//! Hourly flowtuple file store.
//!
//! Mirrors the UCSD telescope data layout the paper consumed: one file per
//! hour, grouped in per-day directories. Files carry a magic header, the
//! hour they cover, a record count, an optional sorted+delta-encoded
//! payload (source addresses are ascending, stored as varint deltas — the
//! same trick corsaro uses to shrink flowtuple files), and an FNV-1a
//! checksum so corruption is detected rather than silently analyzed.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), iotscope_net::NetError> {
//! use iotscope_net::store::{FlowStore, StoreOptions};
//! use iotscope_net::time::UnixHour;
//! use iotscope_net::flowtuple::FlowTuple;
//! use iotscope_net::protocol::TcpFlags;
//! use std::net::Ipv4Addr;
//!
//! let store = FlowStore::create("/tmp/darknet", StoreOptions::default())?;
//! let hour = UnixHour::from_unix_secs(1_491_955_200);
//! let flows = vec![FlowTuple::tcp(
//!     Ipv4Addr::new(203, 0, 113, 1), Ipv4Addr::new(44, 0, 0, 1),
//!     40000, 23, TcpFlags::SYN,
//! )];
//! store.write_hour(hour, &flows)?;
//! let back = store.read_hour(hour)?;
//! assert_eq!(back, flows);
//! # Ok(())
//! # }
//! ```

use crate::flowtuple::{get_varint, put_varint, FlowTuple};
use crate::segment::{segment_file_name, Manifest, Segment, SegmentStoreBuilder, MANIFEST_FILE};
use crate::time::{AnalysisWindow, UnixHour, HOURS_PER_DAY};
use crate::NetError;
use bytes::{Buf, BufMut};
use iotscope_obs::{Counter, Histogram, Registry, BYTE_SIZE_BOUNDS};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Legacy format: the checksum covers only the payload, so header
/// corruption (flags, hour, count) went undetected. Read-only.
const MAGIC_V1: &[u8; 7] = b"IOTFT01";
/// Row format: the checksum covers the header prefix (magic, flags,
/// hour, count) *and* the payload. Still writable via
/// [`StoreFormat::V2`]; new files default to v3.
const MAGIC_V2: &[u8; 7] = b"IOTFT02";
/// Block format: the hour is split into fixed-size record blocks, each
/// independently checksummed and fully delta+varint encoded (every
/// field, column-wise), behind a block index the header checksum covers.
const MAGIC_V3: &[u8; 7] = b"IOTFT03";
const FLAG_DELTA: u8 = 0b0000_0001;

/// Header layout: magic (7) + flags (1) + hour (8) + count (4) +
/// checksum (8). The checksum field itself is never hashed; in v2 the
/// hash covers everything before it plus the payload, in v3 everything
/// before it plus the block index (block payloads carry their own
/// checksums in the index).
pub(crate) const HEADER: usize = 7 + 1 + 8 + 4 + 8;
/// Bytes of header covered by the v2/v3 checksum (everything before it).
const HEADER_HASHED: usize = HEADER - 8;

/// The smallest possible encoded v1/v2 record: a delta record is a
/// 1-byte source varint + 13 fixed bytes + a 1-byte packets varint
/// (plain records are larger). Used to bound the record-count
/// preallocation so a forged count can never allocate more than the
/// file could hold.
const MIN_RECORD_BYTES: usize = 15;

/// Records per v3 block. Blocks are the unit of parallel decode and of
/// corruption quarantine; each resets the delta predictors, so a bigger
/// block compresses marginally better but recovers less on corruption.
pub const BLOCK_RECORDS: usize = 4096;
/// v3 block-index entry: record count (4) + payload length (4) +
/// FNV-1a checksum (8). Byte offsets are the prefix sums of the
/// lengths, so they are implicit.
const INDEX_ENTRY: usize = 4 + 4 + 8;
/// Number of per-record columns in a v3 block (src, dst, src_port,
/// dst_port, protocol, ttl, tcp_flags, ip_len, packets).
const COLUMNS: usize = 9;
/// The v3 analogue of [`MIN_RECORD_BYTES`]: every column of a non-empty
/// block emits at least one byte, so a block payload shorter than this
/// cannot hold any records. Zero-run RLE means a *full* block can
/// legally be as small as `COLUMNS * 3` bytes; the preallocation clamp
/// for v3 is therefore structural — per-block counts are capped at
/// [`BLOCK_RECORDS`] and decoded incrementally — rather than a
/// bytes-per-record ratio.
const MIN_BLOCK_BYTES: usize = COLUMNS;

/// On-disk format version to write. Reads auto-detect from the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// `IOTFT02`: row-encoded payload, whole-file checksum.
    V2,
    /// `IOTFT03`: block-indexed columnar payload, per-block checksums.
    #[default]
    V3,
}

impl std::str::FromStr for StoreFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "v2" | "V2" | "2" => Ok(StoreFormat::V2),
            "v3" | "V3" | "3" => Ok(StoreFormat::V3),
            other => Err(format!("unknown store format {other:?} (want v2 or v3)")),
        }
    }
}

/// Options controlling on-disk encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Sort records by source address and delta-encode the addresses.
    /// Smaller files; record order inside an hour is not preserved.
    pub delta_encode: bool,
    /// Which format [`FlowStore::write_hour`] emits. Defaults to
    /// [`StoreFormat::V3`]; v1/v2 files remain readable either way.
    pub format: StoreFormat,
    /// How many mapped segments the store keeps open at once (LRU,
    /// clamped to at least 1). Reads are hour-sequential, so the
    /// default of two — the current segment plus its
    /// successor during the boundary crossing — keeps a year-scale
    /// scan from re-opening files; raise it for random-access
    /// workloads that hop between many segments.
    pub segment_cache: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            delta_encode: true,
            format: StoreFormat::V3,
            segment_cache: OPEN_SEGMENTS,
        }
    }
}

/// The store-layer metric handles, all under the `store.` prefix.
///
/// Every [`FlowStore`] carries one of these; by default the counters are
/// detached (they count, but no registry ever snapshots them), and
/// [`FlowStore::instrumented`] rebinds them to a shared
/// [`iotscope_obs::Registry`]. All `store.` metrics are
/// [stable](iotscope_obs::Stability::Stable): a successful run reads and
/// writes the same hours whichever thread performs the I/O.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// On-disk bytes read (`store.bytes_read`).
    pub bytes_read: Counter,
    /// Hour files read (`store.hours_read`).
    pub hours_read: Counter,
    /// Flowtuple records decoded (`store.records_decoded`).
    pub records_decoded: Counter,
    /// Decodes rejected by the FNV checksum (`store.checksum_failures`).
    pub checksum_failures: Counter,
    /// On-disk bytes written (`store.bytes_written`).
    pub bytes_written: Counter,
    /// Hour files written (`store.hours_written`).
    pub hours_written: Counter,
    /// Flowtuple records written (`store.records_written`).
    pub records_written: Counter,
    /// Distribution of hour-file sizes in bytes (`store.hour_bytes`).
    pub hour_bytes: Histogram,
    /// v3 blocks decoded successfully (`store.blocks_read`). v1/v2
    /// files count as one block.
    pub blocks_read: Counter,
    /// v3 blocks rejected by their per-block checksum
    /// (`store.block_checksum_failures`) — quarantined in tolerant
    /// decodes, fatal in strict ones.
    pub block_checksum_failures: Counter,
    /// Distribution of per-hour *decoded* (in-memory) sizes in bytes
    /// (`store.hour_decoded_bytes`); read next to `store.hour_bytes`
    /// (compressed on-disk sizes) it shows the compression ratio.
    pub hour_decoded_bytes: Histogram,
    /// Segment opens served from the LRU handle cache
    /// (`store.segment_cache.hits`).
    pub segment_cache_hits: Counter,
    /// Segment opens that had to map a file
    /// (`store.segment_cache.misses`). A high miss rate on a
    /// sequential scan means [`StoreOptions::segment_cache`] is too
    /// small for the access pattern.
    pub segment_cache_misses: Counter,
}

impl StoreMetrics {
    /// Handles not attached to any registry (counts are discarded).
    pub fn detached() -> Self {
        StoreMetrics {
            bytes_read: Counter::detached(),
            hours_read: Counter::detached(),
            records_decoded: Counter::detached(),
            checksum_failures: Counter::detached(),
            bytes_written: Counter::detached(),
            hours_written: Counter::detached(),
            records_written: Counter::detached(),
            hour_bytes: Histogram::detached(&BYTE_SIZE_BOUNDS),
            blocks_read: Counter::detached(),
            block_checksum_failures: Counter::detached(),
            hour_decoded_bytes: Histogram::detached(&BYTE_SIZE_BOUNDS),
            segment_cache_hits: Counter::detached(),
            segment_cache_misses: Counter::detached(),
        }
    }

    /// Handles registered in (or fetched from) `registry`.
    pub fn register(registry: &Registry) -> Self {
        StoreMetrics {
            bytes_read: registry.counter("store.bytes_read"),
            hours_read: registry.counter("store.hours_read"),
            records_decoded: registry.counter("store.records_decoded"),
            checksum_failures: registry.counter("store.checksum_failures"),
            bytes_written: registry.counter("store.bytes_written"),
            hours_written: registry.counter("store.hours_written"),
            records_written: registry.counter("store.records_written"),
            hour_bytes: registry.histogram("store.hour_bytes", &BYTE_SIZE_BOUNDS),
            blocks_read: registry.counter("store.blocks_read"),
            block_checksum_failures: registry.counter("store.block_checksum_failures"),
            hour_decoded_bytes: registry.histogram("store.hour_decoded_bytes", &BYTE_SIZE_BOUNDS),
            segment_cache_hits: registry.counter("store.segment_cache.hits"),
            segment_cache_misses: registry.counter("store.segment_cache.misses"),
        }
    }
}

/// Default capacity of the segment LRU ([`StoreOptions::segment_cache`]).
/// Reads are hour-sequential, so two (the current segment plus its
/// successor during the boundary crossing) keep a year-scale scan from
/// ever re-opening files while bounding resident mappings.
const OPEN_SEGMENTS: usize = 2;

/// Lazily loaded segment-routing state shared by clones of a store:
/// the parsed manifest and a small LRU of open (mapped) segments.
#[derive(Debug, Default)]
struct SegmentCache {
    /// `None` until first use; reset when compaction rewrites routing.
    manifest: Mutex<Option<Arc<Manifest>>>,
    /// LRU-ordered open segments (most recent first), at most
    /// [`StoreOptions::segment_cache`] entries.
    open: Mutex<Vec<(u32, Arc<Segment>)>>,
}

/// A directory-backed store of hourly flowtuple files.
#[derive(Debug, Clone)]
pub struct FlowStore {
    root: PathBuf,
    options: StoreOptions,
    metrics: StoreMetrics,
    segments: Arc<SegmentCache>,
}

impl FlowStore {
    /// Open an existing store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `root` does not exist or is not a directory.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, NetError> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("store root {} is not a directory", root.display()),
            )));
        }
        Ok(FlowStore {
            root,
            options: StoreOptions::default(),
            metrics: StoreMetrics::detached(),
            segments: Arc::default(),
        })
    }

    /// Create (or open) a store rooted at `root`, creating directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create<P: AsRef<Path>>(root: P, options: StoreOptions) -> Result<Self, NetError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FlowStore {
            root,
            options,
            metrics: StoreMetrics::detached(),
            segments: Arc::default(),
        })
    }

    /// Rebind this store's metric handles to `registry`, so reads and
    /// writes show up in its snapshots (under the `store.` prefix).
    /// Consuming builder style: `FlowStore::open(dir)?.instrumented(&r)`.
    #[must_use]
    pub fn instrumented(mut self, registry: &Registry) -> Self {
        self.metrics = StoreMetrics::register(registry);
        self
    }

    /// The store's current metric handles.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the file covering `hour`.
    pub fn hour_path(&self, hour: UnixHour) -> PathBuf {
        let day = hour.get() / u64::from(HOURS_PER_DAY);
        self.root
            .join(format!("day-{day}"))
            .join(format!("hour-{}.ft", hour.get()))
    }

    /// Serialize `flows` into the file for `hour`, replacing any previous
    /// contents.
    ///
    /// The bytes go to a `.ft.tmp` sibling first and are renamed into
    /// place only once fully written, so an interrupted write never
    /// leaves a truncated file where [`FlowStore::read_hour`] (or
    /// [`FlowStore::has_hour`]) would find it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure the temporary file is removed.
    pub fn write_hour(&self, hour: UnixHour, flows: &[FlowTuple]) -> Result<(), NetError> {
        let path = self.hour_path(hour);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("ft.tmp");
        let bytes = encode_hour(hour, flows, self.options);
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(NetError::Io(e));
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(NetError::Io(e));
        }
        self.metrics.bytes_written.add(bytes.len() as u64);
        self.metrics.records_written.add(flows.len() as u64);
        self.metrics.hours_written.inc();
        self.metrics.hour_bytes.observe(bytes.len() as u64);
        Ok(())
    }

    /// Read back the flows for `hour`.
    ///
    /// Delta-encoded files return records sorted by source address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file is missing and
    /// [`NetError::Codec`] if it is corrupt, truncated, or covers a
    /// different hour than its name claims.
    pub fn read_hour(&self, hour: UnixHour) -> Result<Vec<FlowTuple>, NetError> {
        let bytes = self.read_hour_bytes(hour)?;
        self.decode_hour_for(hour, &bytes)
    }

    /// Read the raw on-disk bytes for `hour` without decoding them,
    /// always as an owned `Vec<u8>` (copying out of a segment when the
    /// hour lives there). Prefer [`FlowStore::fetch_hour_bytes`], which
    /// borrows segment-resident hours zero-copy.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the hour is in neither a per-hour
    /// file nor a segment, or a file is unreadable.
    pub fn read_hour_bytes(&self, hour: UnixHour) -> Result<Vec<u8>, NetError> {
        Ok(self.fetch_hour_bytes(hour)?.into_vec())
    }

    /// Fetch the raw on-disk bytes for `hour` without decoding them:
    /// an owned read of the per-hour file when one exists, otherwise a
    /// zero-copy borrow out of the mapped segment the manifest routes
    /// the hour to. A per-hour file *shadows* a segment copy, so
    /// [`FlowStore::write_hour`] after compaction behaves as an
    /// overwrite without rewriting the segment.
    ///
    /// Lets callers separate I/O from decoding — the parallel pipeline
    /// uses this to time (and overlap) the two stages independently.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the hour is in neither a per-hour
    /// file nor a segment (kind `NotFound`, like the pre-segment API),
    /// and [`NetError::Codec`] if the manifest or segment routing the
    /// hour is corrupt.
    pub fn fetch_hour_bytes(&self, hour: UnixHour) -> Result<HourBytes, NetError> {
        let path = self.hour_path(hour);
        match fs::File::open(&path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                self.metrics.bytes_read.add(bytes.len() as u64);
                self.metrics.hours_read.inc();
                Ok(HourBytes {
                    inner: HourBytesInner::Owned(bytes),
                })
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                match self.segment_lookup(hour)? {
                    Some((segment, offset, len)) => {
                        self.metrics.bytes_read.add(len as u64);
                        self.metrics.hours_read.inc();
                        Ok(HourBytes {
                            inner: HourBytesInner::Mapped {
                                segment,
                                offset,
                                len,
                            },
                        })
                    }
                    None => Err(NetError::Io(e)),
                }
            }
            Err(e) => Err(NetError::Io(e)),
        }
    }

    /// Decode bytes previously read for `hour` (the counterpart of
    /// [`FlowStore::read_hour_bytes`]), enforcing that the file really
    /// covers `hour`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] if the bytes are corrupt, truncated,
    /// or cover a different hour than the file name claims.
    pub fn decode_hour_for(
        &self,
        hour: UnixHour,
        bytes: &[u8],
    ) -> Result<Vec<FlowTuple>, NetError> {
        self.decode_hour_for_with(hour, bytes, DecodeOptions::default())
            .map(|d| d.flows)
    }

    /// As [`FlowStore::decode_hour_for`], with explicit decode options:
    /// `opts.threads > 1` decodes v3 blocks in parallel, and
    /// `opts.quarantine` salvages an hour with corrupt v3 blocks instead
    /// of failing it (quarantined blocks are reported in the result and
    /// counted in `store.block_checksum_failures`).
    ///
    /// # Errors
    ///
    /// As [`FlowStore::decode_hour_for`]; with `opts.quarantine`, v3
    /// block corruption is downgraded from an error to a quarantine
    /// entry (header/index corruption still fails the hour).
    pub fn decode_hour_for_with(
        &self,
        hour: UnixHour,
        bytes: &[u8],
        opts: DecodeOptions,
    ) -> Result<DecodedHour, NetError> {
        let decoded = match decode_hour_with(bytes, opts) {
            Ok(d) => d,
            Err(e) => {
                if e.is_checksum_mismatch() {
                    self.metrics.checksum_failures.inc();
                }
                return Err(e);
            }
        };
        if decoded.hour != hour {
            return Err(NetError::Codec(format!(
                "file {} claims hour {}, expected {hour}",
                self.hour_path(hour).display(),
                decoded.hour
            )));
        }
        self.metrics
            .blocks_read
            .add((decoded.blocks - decoded.quarantined.len()) as u64);
        self.metrics
            .block_checksum_failures
            .add(decoded.quarantined.len() as u64);
        self.metrics.records_decoded.add(decoded.flows.len() as u64);
        self.metrics
            .hour_decoded_bytes
            .observe((decoded.flows.len() * std::mem::size_of::<FlowTuple>()) as u64);
        Ok(decoded)
    }

    /// Stream the flows for `hour` out of previously read bytes into
    /// `sink`, block by block, without materializing the hour — the
    /// fused decode→ingest path. See [`decode_hour_visit`] for the
    /// streaming contract; on success this records the same `store.*`
    /// metrics as [`FlowStore::decode_hour_for_with`].
    ///
    /// The claimed-hour check runs *before* anything reaches the sink:
    /// the materialized path can verify the hour after decoding because
    /// nothing has been consumed yet, but a sink may already have folded
    /// flows into long-lived state.
    ///
    /// # Errors
    ///
    /// As [`FlowStore::decode_hour_for_with`]. On error the sink may
    /// have received a prefix of the hour; callers must discard
    /// whatever it accumulated.
    pub fn visit_hour_for(
        &self,
        hour: UnixHour,
        bytes: &[u8],
        opts: DecodeOptions,
        sink: &mut dyn FlowSink,
    ) -> Result<VisitedHour, NetError> {
        let claimed = claimed_hour(bytes)?;
        if claimed != hour {
            return Err(NetError::Codec(format!(
                "file {} claims hour {claimed}, expected {hour}",
                self.hour_path(hour).display()
            )));
        }
        let visited = match decode_hour_visit(bytes, opts, sink) {
            Ok(v) => v,
            Err(e) => {
                if e.is_checksum_mismatch() {
                    self.metrics.checksum_failures.inc();
                }
                return Err(e);
            }
        };
        self.metrics
            .blocks_read
            .add((visited.blocks - visited.quarantined.len()) as u64);
        self.metrics
            .block_checksum_failures
            .add(visited.quarantined.len() as u64);
        self.metrics.records_decoded.add(visited.records as u64);
        self.metrics
            .hour_decoded_bytes
            .observe((visited.records * std::mem::size_of::<FlowTuple>()) as u64);
        Ok(visited)
    }

    /// Read the flows for `hour`, quarantining corrupt v3 blocks
    /// instead of failing the whole hour. `threads` sizes the parallel
    /// block decode (1 = sequential).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file is missing and
    /// [`NetError::Codec`] for corruption that quarantine cannot
    /// contain (bad magic, header/index corruption, or any corruption
    /// in a block-less v1/v2 file).
    pub fn read_hour_tolerant(
        &self,
        hour: UnixHour,
        threads: usize,
    ) -> Result<DecodedHour, NetError> {
        let bytes = self.read_hour_bytes(hour)?;
        self.decode_hour_for_with(
            hour,
            &bytes,
            DecodeOptions {
                threads,
                quarantine: true,
            },
        )
    }

    /// Whether `hour` is readable — from a per-hour file or a segment.
    /// The segment check only consults the (cached) manifest; no
    /// segment file is opened.
    pub fn has_hour(&self, hour: UnixHour) -> bool {
        self.hour_path(hour).is_file()
            || self
                .load_manifest()
                .map(|m| m.lookup(hour).is_some())
                .unwrap_or(false)
    }

    /// The hours of `window` that have files, in order.
    pub fn hours_present(&self, window: &AnalysisWindow) -> Vec<UnixHour> {
        window.iter_hours().filter(|h| self.has_hour(*h)).collect()
    }

    /// The hours of `window` with **no** file — the paper's data-quality
    /// check that led to dropping April 18.
    pub fn hours_missing(&self, window: &AnalysisWindow) -> Vec<UnixHour> {
        window.iter_hours().filter(|h| !self.has_hour(*h)).collect()
    }

    /// The directory segments and their manifest live in.
    pub fn segments_dir(&self) -> PathBuf {
        self.root.join("segments")
    }

    /// Path of the segment manifest (`segments/manifest.idx`).
    pub fn manifest_path(&self) -> PathBuf {
        self.segments_dir().join(MANIFEST_FILE)
    }

    /// Every hour with a per-hour file under the store root, ascending.
    /// Does **not** include segment-resident hours — this is the
    /// compaction work list (and the CLI migrate walk).
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures.
    pub fn hours_on_disk(&self) -> Result<Vec<UnixHour>, NetError> {
        let mut hours = Vec::new();
        for day in fs::read_dir(&self.root)? {
            let day = day?;
            if !day
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("day-"))
                || !day.path().is_dir()
            {
                continue;
            }
            for entry in fs::read_dir(day.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(hour) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("hour-"))
                    .and_then(|n| n.strip_suffix(".ft"))
                    .and_then(|n| n.parse::<u64>().ok())
                else {
                    continue;
                };
                hours.push(UnixHour::new(hour));
            }
        }
        hours.sort();
        hours.dedup();
        Ok(hours)
    }

    /// Compact every per-hour file into the segment layout: hours are
    /// packed (ascending) into segments of `hours_per_segment`, the
    /// manifest is written (merged over any previous compaction), and
    /// only then are the per-hour files removed — an interrupted
    /// compaction leaves the hour readable from wherever it still is.
    ///
    /// v3 files are copied into segments byte-for-byte, so segment
    /// reads stay bit-identical to per-hour reads — including corrupt
    /// blocks, which quarantine exactly as before. v1/v2 files are
    /// strictly decoded and re-encoded as v3 (preserving their delta
    /// flag, hence their record order).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] for `hours_per_segment == 0`, an
    /// existing-but-corrupt manifest, a misnamed hour file, or a
    /// v1/v2 file that fails strict decode; I/O failures propagate.
    /// On error the store is never left with an hour routed nowhere.
    pub fn compact_to_segments(
        &self,
        hours_per_segment: usize,
    ) -> Result<CompactionReport, NetError> {
        let hours = self.hours_on_disk()?;
        if hours.is_empty() {
            return Ok(CompactionReport::default());
        }
        let manifest_path = self.manifest_path();
        let existing = if manifest_path.is_file() {
            Manifest::load(&manifest_path)?
        } else {
            Manifest::default()
        };
        let mut builder =
            SegmentStoreBuilder::new(&self.segments_dir(), hours_per_segment, existing)?;
        let mut bytes_before = 0u64;
        for hour in &hours {
            let path = self.hour_path(*hour);
            let mut bytes = Vec::new();
            fs::File::open(&path)?.read_to_end(&mut bytes)?;
            bytes_before += bytes.len() as u64;
            let claimed = claimed_hour(&bytes)
                .map_err(|e| NetError::Codec(format!("{}: {e}", path.display())))?;
            if claimed != *hour {
                return Err(NetError::Codec(format!(
                    "file {} claims hour {claimed}, expected {hour}",
                    path.display()
                )));
            }
            let payload = if bytes.starts_with(MAGIC_V3) {
                bytes
            } else {
                let delta = bytes[7] & FLAG_DELTA != 0;
                let decoded = decode_hour_with(&bytes, DecodeOptions::default())
                    .map_err(|e| NetError::Codec(format!("{}: {e}", path.display())))?;
                encode_hour_v3(
                    *hour,
                    &decoded.flows,
                    StoreOptions {
                        delta_encode: delta,
                        format: StoreFormat::V3,
                        ..self.options
                    },
                )
            };
            builder.push(*hour, payload)?;
        }
        let report = builder.finish()?;
        // The manifest is durable; the per-hour copies are now redundant.
        for hour in &hours {
            let _ = fs::remove_file(self.hour_path(*hour));
        }
        for day in fs::read_dir(&self.root)? {
            let day = day?;
            if day
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("day-"))
            {
                // Only succeeds when empty; a day holding files written
                // mid-compaction survives.
                let _ = fs::remove_dir(day.path());
            }
        }
        self.invalidate_segment_caches();
        Ok(CompactionReport {
            segments_written: report.segments_written,
            hours_compacted: hours.len(),
            bytes_before,
            bytes_after: report.bytes_written,
        })
    }

    /// The cached manifest, loading (or defaulting to empty, when no
    /// compaction ever ran) on first use.
    fn load_manifest(&self) -> Result<Arc<Manifest>, NetError> {
        let mut cached = self
            .segments
            .manifest
            .lock()
            .expect("manifest cache poisoned");
        if let Some(m) = cached.as_ref() {
            return Ok(Arc::clone(m));
        }
        let path = self.manifest_path();
        let manifest = Arc::new(if path.is_file() {
            Manifest::load(&path)?
        } else {
            Manifest::default()
        });
        *cached = Some(Arc::clone(&manifest));
        Ok(manifest)
    }

    /// Resolve `hour` through the manifest to its mapped segment and
    /// byte range, cross-checking the manifest's routing against the
    /// segment's own hour table so a stale manifest fails loudly.
    fn segment_lookup(
        &self,
        hour: UnixHour,
    ) -> Result<Option<(Arc<Segment>, usize, usize)>, NetError> {
        let manifest = self.load_manifest()?;
        let Some(entry) = manifest.lookup(hour) else {
            return Ok(None);
        };
        let segment = self.open_segment(entry.segment)?;
        let range = (entry.offset as usize, entry.len as usize);
        if segment.locate(hour) != Some(range) {
            return Err(NetError::Codec(format!(
                "manifest routes {hour} to segment {} at {}+{}, but the segment disagrees",
                entry.segment, entry.offset, entry.len
            )));
        }
        Ok(Some((segment, range.0, range.1)))
    }

    /// Open (and validate) segment `id`, through the LRU handle cache
    /// sized by [`StoreOptions::segment_cache`]. A hit moves the
    /// segment to the front; a miss maps the file, inserts it at the
    /// front, and evicts the least-recently-used handle past capacity.
    fn open_segment(&self, id: u32) -> Result<Arc<Segment>, NetError> {
        let mut open = self.segments.open.lock().expect("segment cache poisoned");
        if let Some(pos) = open.iter().position(|(i, _)| *i == id) {
            let entry = open.remove(pos);
            let segment = Arc::clone(&entry.1);
            open.insert(0, entry);
            self.metrics.segment_cache_hits.inc();
            return Ok(segment);
        }
        let segment = Arc::new(Segment::open(
            &self.segments_dir().join(segment_file_name(id)),
        )?);
        open.insert(0, (id, Arc::clone(&segment)));
        open.truncate(self.options.segment_cache.max(1));
        self.metrics.segment_cache_misses.inc();
        Ok(segment)
    }

    /// Drop the cached manifest and open segments (routing changed).
    fn invalidate_segment_caches(&self) {
        *self
            .segments
            .manifest
            .lock()
            .expect("manifest cache poisoned") = None;
        self.segments
            .open
            .lock()
            .expect("segment cache poisoned")
            .clear();
    }
}

/// What [`FlowStore::compact_to_segments`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segment files written.
    pub segments_written: usize,
    /// Per-hour files folded into segments (and removed).
    pub hours_compacted: usize,
    /// Total bytes of the per-hour files before compaction.
    pub bytes_before: u64,
    /// Total bytes of the segment files written.
    pub bytes_after: u64,
}

/// Raw bytes of one hour as fetched by [`FlowStore::fetch_hour_bytes`]:
/// either an owned read of a per-hour file or a zero-copy borrow out of
/// a mapped segment (the `Arc` keeps the mapping alive for as long as
/// any fetched hour is). Dereferences to `&[u8]` either way.
#[derive(Debug)]
pub struct HourBytes {
    inner: HourBytesInner,
}

#[derive(Debug)]
enum HourBytesInner {
    Owned(Vec<u8>),
    Mapped {
        segment: Arc<Segment>,
        offset: usize,
        len: usize,
    },
}

impl HourBytes {
    /// Whether these bytes borrow a mapped segment (false for per-hour
    /// file reads and for segment reads on the non-mmap fallback —
    /// see [`crate::mmap::Mmap::is_mapped`]; the slice behaves
    /// identically either way, this is observability for tests and
    /// benchmarks).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            HourBytesInner::Owned(_) => false,
            HourBytesInner::Mapped { segment, .. } => segment.is_mapped(),
        }
    }

    /// The bytes as a slice.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            HourBytesInner::Owned(bytes) => bytes,
            HourBytesInner::Mapped {
                segment,
                offset,
                len,
            } => &segment.bytes()[*offset..*offset + *len],
        }
    }

    /// Materialize into an owned `Vec<u8>` (free for owned reads).
    pub fn into_vec(self) -> Vec<u8> {
        match self.inner {
            HourBytesInner::Owned(bytes) => bytes,
            HourBytesInner::Mapped {
                segment,
                offset,
                len,
            } => segment.bytes()[offset..offset + len].to_vec(),
        }
    }
}

impl std::ops::Deref for HourBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for HourBytes {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl From<Vec<u8>> for HourBytes {
    fn from(bytes: Vec<u8>) -> Self {
        HourBytes {
            inner: HourBytesInner::Owned(bytes),
        }
    }
}

/// Encode one hour's flows into the on-disk format selected by
/// `options.format` (v3 by default).
pub fn encode_hour(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    match options.format {
        StoreFormat::V2 => encode_hour_v2(hour, flows, options),
        StoreFormat::V3 => encode_hour_v3(hour, flows, options),
    }
}

/// Encode one hour's flows into the v2 row format, whose checksum
/// covers the header as well as the payload.
pub fn encode_hour_v2(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let payload = encode_payload(flows, options);
    let mut out = Vec::with_capacity(payload.len() + HEADER);
    out.extend_from_slice(MAGIC_V2);
    out.put_u8(if options.delta_encode { FLAG_DELTA } else { 0 });
    out.put_u64(hour.get());
    out.put_u32(flows.len() as u32);
    let mut hasher = Fnv1a::new();
    hasher.update(&out[..HEADER_HASHED]);
    hasher.update(&payload);
    out.put_u64(hasher.finish());
    out.extend_from_slice(&payload);
    out
}

/// Encode one hour's flows into the v3 block format: records are split
/// into [`BLOCK_RECORDS`]-sized blocks, each block stores every field
/// as a delta+varint column (zero runs collapsed), and the header is
/// followed by a block index of `(record count, payload length,
/// checksum)` entries that the header checksum covers.
pub fn encode_hour_v3(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let mut ordered: Vec<&FlowTuple> = flows.iter().collect();
    if options.delta_encode {
        // Same ordering as v2 delta files, so both formats decode an
        // hour to the identical record sequence.
        ordered.sort_by_key(|f| (u32::from(f.src_ip), u32::from(f.dst_ip), f.dst_port));
    }
    let blocks: Vec<(u32, Vec<u8>)> = ordered
        .chunks(BLOCK_RECORDS)
        .map(|chunk| (chunk.len() as u32, encode_block(chunk)))
        .collect();
    let index_len = 4 + blocks.len() * INDEX_ENTRY;
    let payload_len: usize = blocks.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(HEADER + index_len + payload_len);
    out.extend_from_slice(MAGIC_V3);
    out.put_u8(if options.delta_encode { FLAG_DELTA } else { 0 });
    out.put_u64(hour.get());
    out.put_u32(flows.len() as u32);
    let mut index = Vec::with_capacity(index_len);
    index.put_u32(blocks.len() as u32);
    for (count, payload) in &blocks {
        index.put_u32(*count);
        index.put_u32(payload.len() as u32);
        index.put_u64(fnv1a(payload));
    }
    let mut hasher = Fnv1a::new();
    hasher.update(&out[..HEADER_HASHED]);
    hasher.update(&index);
    out.put_u64(hasher.finish());
    out.extend_from_slice(&index);
    for (_, payload) in &blocks {
        out.extend_from_slice(payload);
    }
    out
}

/// Rewrite the hour an encoded file claims, in place, and fix up
/// whatever checksum covers the header: v2 hashes header + payload, v3
/// hashes header + block index, and v1's checksum never covered the
/// header at all. No payload encoding depends on the hour, so the
/// result is bit-identical to re-encoding the same records at the new
/// hour — synthetic replays (the perf bin's `--year`) lean on this to
/// reuse one encoded hour at thousands of timestamps without paying
/// for re-encoding, and archive tooling can use it to re-date hours.
///
/// # Errors
///
/// Returns [`NetError::Codec`] for an unrecognized magic or a file too
/// short to hold the header (plus, for v3, its block index). The bytes
/// are untouched on error.
pub fn restamp_hour(bytes: &mut [u8], hour: UnixHour) -> Result<(), NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Codec("file shorter than header".to_owned()));
    }
    let mut hasher = Fnv1a::new();
    let hashed_tail = match &bytes[..7] {
        m if m == MAGIC_V1 => None, // v1 hashes the payload alone
        m if m == MAGIC_V2 => Some(HEADER..bytes.len()),
        m if m == MAGIC_V3 => {
            if bytes.len() < HEADER + 4 {
                return Err(NetError::Codec("truncated v3 block index".to_owned()));
            }
            let num_blocks =
                u32::from_be_bytes(bytes[HEADER..HEADER + 4].try_into().expect("4 bytes"));
            let index_end = (num_blocks as usize)
                .checked_mul(INDEX_ENTRY)
                .and_then(|n| n.checked_add(HEADER + 4))
                .filter(|end| *end <= bytes.len())
                .ok_or_else(|| NetError::Codec("truncated v3 block index".to_owned()))?;
            Some(HEADER..index_end)
        }
        _ => {
            return Err(NetError::Codec(
                "bad magic (not a flowtuple hour file)".to_owned(),
            ))
        }
    };
    bytes[8..16].copy_from_slice(&hour.get().to_be_bytes());
    if let Some(tail) = hashed_tail {
        hasher.update(&bytes[..HEADER_HASHED]);
        hasher.update(&bytes[tail]);
        bytes[HEADER_HASHED..HEADER].copy_from_slice(&hasher.finish().to_be_bytes());
    }
    Ok(())
}

/// Encode one hour's flows in the legacy v1 format (payload-only
/// checksum). Kept so compatibility tests can fabricate old files;
/// nothing in the workspace writes v1 anymore.
pub fn encode_hour_v1(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let payload = encode_payload(flows, options);
    let mut out = Vec::with_capacity(payload.len() + HEADER);
    out.extend_from_slice(MAGIC_V1);
    out.put_u8(if options.delta_encode { FLAG_DELTA } else { 0 });
    out.put_u64(hour.get());
    out.put_u32(flows.len() as u32);
    out.put_u64(fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

fn encode_payload(flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let mut payload = Vec::with_capacity(flows.len() * 16);
    if options.delta_encode {
        let mut sorted: Vec<&FlowTuple> = flows.iter().collect();
        sorted.sort_by_key(|f| (u32::from(f.src_ip), u32::from(f.dst_ip), f.dst_port));
        let mut prev: u32 = 0;
        for f in sorted {
            let ip = u32::from(f.src_ip);
            put_varint(&mut payload, ip.wrapping_sub(prev));
            prev = ip;
            encode_rest(&mut payload, f);
        }
    } else {
        for f in flows {
            f.encode_into(&mut payload);
        }
    }
    payload
}

/// How [`decode_hour_with`] should treat a decodable file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Threads for parallel v3 block decode (1 = sequential; v1/v2
    /// payloads are always sequential).
    pub threads: usize,
    /// Quarantine corrupt v3 blocks (keep the hour, report the blocks)
    /// instead of failing the whole hour. Header or index corruption —
    /// and any corruption in block-less v1/v2 files — still fails.
    pub quarantine: bool,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            threads: 1,
            quarantine: false,
        }
    }
}

/// A v3 block rejected during a quarantining decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedBlock {
    /// Zero-based block position within the hour.
    pub index: usize,
    /// Records the index claimed for the block (lost with it).
    pub records: u32,
    /// Why the block was rejected.
    pub reason: String,
}

/// The outcome of decoding one hour file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedHour {
    /// The hour the file header claims.
    pub hour: UnixHour,
    /// Successfully decoded records, in on-disk order.
    pub flows: Vec<FlowTuple>,
    /// Total blocks in the file (1 for v1/v2).
    pub blocks: usize,
    /// Blocks dropped by a quarantining decode (empty on strict
    /// decodes, which fail instead).
    pub quarantined: Vec<QuarantinedBlock>,
}

/// A consumer of decoded flow slices — the receiving end of the fused
/// decode→ingest streaming path ([`decode_hour_visit`]).
///
/// # Contract
///
/// * Slices arrive in on-disk order (v3 block order; one slice for a
///   whole v1/v2 hour), so feeding a sink is observably identical to
///   feeding it the materialized `Vec<FlowTuple>` in one call — the
///   slice boundaries carry no information.
/// * Slices borrow a reusable scratch buffer: they are only valid for
///   the duration of the call and must be folded, not stashed.
/// * A quarantined block is silently skipped (it is reported in
///   [`VisitedHour::quarantined`], exactly as the materialized path
///   drops it from [`DecodedHour::flows`]).
/// * On a decode **error** the sink may already have received a prefix
///   of the hour; callers must throw away whatever state it built.
/// * A sequential v3 decode delivers whole blocks through
///   [`FlowSink::visit_block`]; its default implementation falls back
///   to [`FlowSink::on_flows`] over the block's materialized records,
///   so a sink that only implements `on_flows` observes the exact
///   per-record stream it always did. Sinks that override
///   `visit_block` (batched correlation, column folds) must remain
///   observably identical to the fallback — the slice and the block
///   describe the same records in the same order.
pub trait FlowSink {
    /// Fold one in-order slice of decoded records.
    fn on_flows(&mut self, flows: &[FlowTuple]);

    /// Fold one decoded v3 block, column-at-a-time. The default
    /// forwards the block's record view to [`FlowSink::on_flows`];
    /// batched sinks override this to run whole-column passes (e.g.
    /// merge-join correlation over the ascending `src_ip` column).
    fn visit_block(&mut self, block: &ColumnBlock) {
        self.on_flows(block.flows());
    }
}

/// A [`FlowSink`] that materializes the stream — the adapter that lets
/// the materialized decode share the streaming code path (which is what
/// makes the two paths bit-identical by construction).
#[derive(Debug, Default)]
pub struct CollectSink(Vec<FlowTuple>);

impl CollectSink {
    /// A sink pre-sized for `n` records, so per-block appends of a
    /// known-size hour never reallocate.
    pub fn with_capacity(n: usize) -> Self {
        CollectSink(Vec::with_capacity(n))
    }

    /// The collected records, in on-disk order.
    pub fn into_flows(self) -> Vec<FlowTuple> {
        self.0
    }
}

impl FlowSink for CollectSink {
    fn on_flows(&mut self, flows: &[FlowTuple]) {
        self.0.extend_from_slice(flows);
    }
}

/// The outcome of streaming one hour file through a [`FlowSink`]:
/// [`DecodedHour`] minus the materialized records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitedHour {
    /// The hour the file header claims.
    pub hour: UnixHour,
    /// Records handed to the sink.
    pub records: usize,
    /// Total blocks in the file (1 for v1/v2).
    pub blocks: usize,
    /// Blocks dropped by a quarantining decode (empty on strict
    /// decodes, which fail instead).
    pub quarantined: Vec<QuarantinedBlock>,
}

/// Peek at the hour an on-disk file claims to cover, without decoding
/// any payload. Lets streaming callers reject a misnamed file *before*
/// feeding its records to a sink.
///
/// # Errors
///
/// Returns [`NetError::Codec`] for a short header or bad magic.
pub fn claimed_hour(bytes: &[u8]) -> Result<UnixHour, NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Codec("file shorter than header".to_owned()));
    }
    match &bytes[..7] {
        m if m == MAGIC_V1 || m == MAGIC_V2 || m == MAGIC_V3 => {
            Ok(UnixHour::new((&bytes[8..16]).get_u64()))
        }
        _ => Err(NetError::Codec(
            "bad magic (not a flowtuple file)".to_owned(),
        )),
    }
}

/// Decode an on-disk hour file back into `(hour, flows)`.
///
/// # Errors
///
/// Returns [`NetError::Codec`] for bad magic, checksum mismatch,
/// truncation, or trailing garbage.
pub fn decode_hour(bytes: &[u8]) -> Result<(UnixHour, Vec<FlowTuple>), NetError> {
    decode_hour_with(bytes, DecodeOptions::default()).map(|d| (d.hour, d.flows))
}

/// Stream an on-disk hour file through `sink` without materializing it:
/// v3 blocks are decoded one at a time into a reusable scratch buffer
/// and handed to the sink as `&[FlowTuple]` slices; block-less v1/v2
/// files decode whole and arrive as a single slice. With
/// `opts.threads > 1`, bounded batches of blocks decode in parallel and
/// are fed to the sink in order, so sink-observable behavior never
/// depends on the thread count.
///
/// # Errors
///
/// As [`decode_hour_with`]. On error the sink may hold a prefix of the
/// hour (see the [`FlowSink`] contract).
pub fn decode_hour_visit(
    bytes: &[u8],
    opts: DecodeOptions,
    sink: &mut dyn FlowSink,
) -> Result<VisitedHour, NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Codec("file shorter than header".to_owned()));
    }
    match &bytes[..7] {
        m if m == MAGIC_V3 => visit_hour_v3(bytes, opts, sink),
        m if m == MAGIC_V2 || m == MAGIC_V1 => {
            // Row formats have no block structure to stream over; decode
            // whole and deliver as one slice.
            let decoded = decode_hour_v12(bytes, m == MAGIC_V2)?;
            sink.on_flows(&decoded.flows);
            Ok(VisitedHour {
                hour: decoded.hour,
                records: decoded.flows.len(),
                blocks: decoded.blocks,
                quarantined: decoded.quarantined,
            })
        }
        _ => Err(NetError::Codec(
            "bad magic (not a flowtuple file)".to_owned(),
        )),
    }
}

/// Decode an hour file with explicit [`DecodeOptions`] (parallel v3
/// block decode and/or per-block corruption quarantine).
///
/// # Errors
///
/// As [`decode_hour`]; with `opts.quarantine`, corrupt v3 blocks are
/// reported in [`DecodedHour::quarantined`] instead of erroring.
pub fn decode_hour_with(bytes: &[u8], opts: DecodeOptions) -> Result<DecodedHour, NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Codec("file shorter than header".to_owned()));
    }
    match &bytes[..7] {
        m if m == MAGIC_V3 => decode_hour_v3(bytes, opts),
        m if m == MAGIC_V2 => decode_hour_v12(bytes, true),
        m if m == MAGIC_V1 => decode_hour_v12(bytes, false),
        _ => Err(NetError::Codec(
            "bad magic (not a flowtuple file)".to_owned(),
        )),
    }
}

/// The shared v1/v2 row-format decoder.
fn decode_hour_v12(bytes: &[u8], v2: bool) -> Result<DecodedHour, NetError> {
    let mut hdr = &bytes[7..HEADER];
    let flags = hdr.get_u8();
    let hour = UnixHour::new(hdr.get_u64());
    let count = hdr.get_u32() as usize;
    let checksum = hdr.get_u64();
    let payload = &bytes[HEADER..];
    let computed = if v2 {
        let mut hasher = Fnv1a::new();
        hasher.update(&bytes[..HEADER_HASHED]);
        hasher.update(payload);
        hasher.finish()
    } else {
        // v1 files only covered the payload; header corruption there is
        // caught by the plausibility checks below as far as possible.
        fnv1a(payload)
    };
    if computed != checksum {
        return Err(NetError::Codec(
            "checksum mismatch (corrupt file)".to_owned(),
        ));
    }
    // A forged count must never drive the preallocation past what the
    // payload could actually hold (records are >= MIN_RECORD_BYTES).
    if count > payload.len() / MIN_RECORD_BYTES {
        return Err(NetError::Codec(format!(
            "implausible record count {count} for {}-byte payload",
            payload.len()
        )));
    }
    let delta = flags & FLAG_DELTA != 0;
    let mut flows = Vec::with_capacity(count);
    let mut buf = payload;
    let mut prev: u32 = 0;
    for _ in 0..count {
        if delta {
            let d = get_varint(&mut buf)?;
            prev = prev.wrapping_add(d);
            let mut f = decode_rest(&mut buf)?;
            f.src_ip = std::net::Ipv4Addr::from(prev);
            flows.push(f);
        } else {
            flows.push(FlowTuple::decode_from(&mut buf)?);
        }
    }
    if buf.has_remaining() {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after {count} records",
            buf.remaining()
        )));
    }
    Ok(DecodedHour {
        hour,
        flows,
        blocks: 1,
        quarantined: Vec::new(),
    })
}

/// One parsed v3 block-index entry plus its payload slice.
struct V3Block<'a> {
    count: u32,
    checksum: u64,
    payload: &'a [u8],
}

/// The v3 block-format decoder: the materialized façade over the
/// streaming path ([`visit_hour_v3`] + [`CollectSink`]), so both decode
/// an hour through the identical code and can never drift apart.
fn decode_hour_v3(bytes: &[u8], opts: DecodeOptions) -> Result<DecodedHour, NetError> {
    // Pre-size the collection to the header's record count so block
    // appends never reallocate. The count is clamped by what the block
    // index could actually address, so a corrupt header cannot drive
    // the allocation (header and index are checksummed, but the clamp
    // keeps even a colliding forgery bounded).
    let count = (&bytes[16..20]).get_u32() as usize;
    let num_blocks = if bytes.len() >= HEADER + 4 {
        (&bytes[HEADER..HEADER + 4]).get_u32() as usize
    } else {
        0
    };
    let mut sink = CollectSink::with_capacity(count.min(num_blocks.saturating_mul(BLOCK_RECORDS)));
    let visited = visit_hour_v3(bytes, opts, &mut sink)?;
    Ok(DecodedHour {
        hour: visited.hour,
        flows: sink.into_flows(),
        blocks: visited.blocks,
        quarantined: visited.quarantined,
    })
}

/// Validate a v3 header + block index and slice out the block payloads.
/// Everything past this point can trust counts and bounds.
fn parse_v3(bytes: &[u8]) -> Result<(UnixHour, Vec<V3Block<'_>>), NetError> {
    let mut hdr = &bytes[7..HEADER];
    let _flags = hdr.get_u8();
    let hour = UnixHour::new(hdr.get_u64());
    let count = hdr.get_u32() as usize;
    let checksum = hdr.get_u64();
    if bytes.len() < HEADER + 4 {
        return Err(NetError::Codec(
            "v3 file shorter than block index".to_owned(),
        ));
    }
    let num_blocks = (&bytes[HEADER..HEADER + 4]).get_u32() as usize;
    let index_end = num_blocks
        .checked_mul(INDEX_ENTRY)
        .and_then(|n| n.checked_add(HEADER + 4))
        .filter(|end| *end <= bytes.len())
        .ok_or_else(|| {
            NetError::Codec(format!(
                "implausible block count {num_blocks} for {}-byte file",
                bytes.len()
            ))
        })?;
    let mut hasher = Fnv1a::new();
    hasher.update(&bytes[..HEADER_HASHED]);
    hasher.update(&bytes[HEADER..index_end]);
    if hasher.finish() != checksum {
        return Err(NetError::Codec(
            "checksum mismatch (corrupt v3 header or block index)".to_owned(),
        ));
    }
    // Walk the (now trusted) index, slicing each block's payload.
    let mut blocks = Vec::with_capacity(num_blocks);
    let mut idx = &bytes[HEADER + 4..index_end];
    let mut offset = index_end;
    let mut total_records = 0usize;
    for b in 0..num_blocks {
        let block_count = idx.get_u32();
        let len = idx.get_u32() as usize;
        let block_checksum = idx.get_u64();
        if block_count == 0 || block_count as usize > BLOCK_RECORDS {
            return Err(NetError::Codec(format!(
                "block {b}: implausible record count {block_count}"
            )));
        }
        if len < MIN_BLOCK_BYTES || offset + len > bytes.len() {
            return Err(NetError::Codec(format!(
                "block {b}: implausible payload length {len}"
            )));
        }
        total_records += block_count as usize;
        blocks.push(V3Block {
            count: block_count,
            checksum: block_checksum,
            payload: &bytes[offset..offset + len],
        });
        offset += len;
    }
    if offset != bytes.len() {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after {num_blocks} blocks",
            bytes.len() - offset
        )));
    }
    if total_records != count {
        return Err(NetError::Codec(format!(
            "header claims {count} records but blocks hold {total_records}"
        )));
    }
    Ok((hour, blocks))
}

/// The streaming v3 decode: feed `sink` one block at a time. Sequential
/// decodes reuse one [`ColumnBlock`] across blocks (zero per-block
/// allocation) and deliver whole blocks through
/// [`FlowSink::visit_block`]; parallel decodes run bounded batches of
/// blocks through [`decode_blocks_parallel`] (record-at-a-time per
/// worker) and deliver results in block order via
/// [`FlowSink::on_flows`], so at most one batch of decoded blocks is
/// ever resident and sink-observable behavior never depends on the
/// thread count.
fn visit_hour_v3(
    bytes: &[u8],
    opts: DecodeOptions,
    sink: &mut dyn FlowSink,
) -> Result<VisitedHour, NetError> {
    let (hour, blocks) = parse_v3(bytes)?;
    let mut records = 0usize;
    let mut quarantined = Vec::new();
    // Per-block failure handling, shared by both decode strategies so
    // quarantine semantics cannot drift between them.
    fn reject(
        i: usize,
        e: NetError,
        block: &V3Block<'_>,
        quarantine: bool,
        quarantined: &mut Vec<QuarantinedBlock>,
    ) -> Result<(), NetError> {
        if quarantine {
            quarantined.push(QuarantinedBlock {
                index: i,
                records: block.count,
                reason: format!("{e}"),
            });
            Ok(())
        } else {
            Err(NetError::Codec(format!("block {i}: {e}")))
        }
    }
    if opts.threads > 1 && blocks.len() > 1 {
        // Batch size bounds resident decoded blocks while keeping every
        // worker busy for a few blocks per scope.
        let batch = opts.threads * 4;
        for (b, part) in blocks.chunks(batch).enumerate() {
            for (j, result) in decode_blocks_parallel(part, opts.threads)
                .into_iter()
                .enumerate()
            {
                let i = b * batch + j;
                match result {
                    Ok(flows) => {
                        records += flows.len();
                        sink.on_flows(&flows);
                    }
                    Err(e) => reject(i, e, &blocks[i], opts.quarantine, &mut quarantined)?,
                }
            }
        }
    } else {
        // Sequential decodes take the columnar fast path: one reused
        // ColumnBlock, whole-column un-delta passes, and batched
        // delivery through `visit_block` (whose default falls back to
        // the per-record `on_flows`, so non-batched sinks observe the
        // identical stream).
        let mut scratch = ColumnBlock::default();
        for (i, block) in blocks.iter().enumerate() {
            match decode_block_checked_columnar_into(block, &mut scratch) {
                Ok(()) => {
                    records += scratch.len();
                    sink.visit_block(&scratch);
                }
                Err(e) => reject(i, e, block, opts.quarantine, &mut quarantined)?,
            }
        }
    }
    Ok(VisitedHour {
        hour,
        records,
        blocks: blocks.len(),
        quarantined,
    })
}

/// Decode the index slices in parallel with scoped threads, preserving
/// block order in the result. Corrupt blocks yield per-block errors, so
/// quarantine semantics are identical to the sequential path.
fn decode_blocks_parallel(
    blocks: &[V3Block<'_>],
    threads: usize,
) -> Vec<Result<Vec<FlowTuple>, NetError>> {
    let threads = threads.min(blocks.len());
    let chunk = blocks.len().div_ceil(threads);
    let mut results: Vec<Result<Vec<FlowTuple>, NetError>> = Vec::with_capacity(blocks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || part.iter().map(decode_block_checked).collect::<Vec<_>>())
            })
            .collect();
        for handle in handles {
            results.extend(handle.join().expect("block decode worker panicked"));
        }
    });
    results
}

/// Reusable per-block decode buffers: one `Vec<u32>` per column plus
/// the decoded records. A sequential streaming decode carries one of
/// these across every block of an hour (and across hours, if the
/// caller keeps it), so the steady state allocates nothing.
#[derive(Debug, Default)]
struct BlockScratch {
    cols: [Vec<u32>; COLUMNS],
    flows: Vec<FlowTuple>,
}

/// Verify one block's checksum and decode its columns into `scratch`
/// (records land in `scratch.flows`, replacing previous contents).
///
/// The checksum is *interleaved* with the decode rather than a
/// separate pass: the RLE loop feeds every consumed byte to an FNV-1a
/// hasher as a side effect, and the comparison happens once the decode
/// finishes. FNV's multiply chain is pure latency (~3 cycles/byte with
/// nothing else to do), so the decode's independent ALU work executes
/// under it essentially for free — fusing the passes is markedly
/// cheaper than running them back to back over the same bytes.
fn decode_block_checked_into(
    block: &V3Block<'_>,
    scratch: &mut BlockScratch,
) -> Result<(), NetError> {
    let mut hasher = Fnv1a::new();
    let decoded = decode_block_into(block.payload, block.count as usize, scratch, &mut hasher);
    resolve_block_checksum(decoded, &hasher, block)
}

/// Resolve an interleaved decode-plus-hash against the block checksum
/// with checksum-first error precedence: a block that fails its
/// checksum reports "checksum mismatch (corrupt block)" even when the
/// payload also fails to parse, exactly as when the hash was a
/// separate up-front pass. A decode error leaves `hasher` mid-stream,
/// so that cold path re-hashes the payload from scratch to make the
/// call.
fn resolve_block_checksum(
    decoded: Result<(), NetError>,
    hasher: &Fnv1a,
    block: &V3Block<'_>,
) -> Result<(), NetError> {
    let mismatch = || NetError::Codec("checksum mismatch (corrupt block)".to_owned());
    match decoded {
        Ok(()) if hasher.finish() == block.checksum => Ok(()),
        Ok(()) => Err(mismatch()),
        Err(_) if fnv1a(block.payload) != block.checksum => Err(mismatch()),
        Err(e) => Err(e),
    }
}

/// Verify one block's checksum and decode its columns.
fn decode_block_checked(block: &V3Block<'_>) -> Result<Vec<FlowTuple>, NetError> {
    let mut scratch = BlockScratch::default();
    decode_block_checked_into(block, &mut scratch)?;
    Ok(scratch.flows)
}

/// Encode every field of `f` except `src_ip` (already delta-encoded).
fn encode_rest<B: BufMut>(buf: &mut B, f: &FlowTuple) {
    buf.put_u32(u32::from(f.dst_ip));
    buf.put_u16(f.src_port);
    buf.put_u16(f.dst_port);
    buf.put_u8(f.protocol.number());
    buf.put_u8(f.ttl);
    buf.put_u8(f.tcp_flags.bits());
    buf.put_u16(f.ip_len);
    put_varint(buf, f.packets);
}

fn decode_rest<B: Buf>(buf: &mut B) -> Result<FlowTuple, NetError> {
    use crate::protocol::{TcpFlags, TransportProtocol};
    const FIXED: usize = 4 + 2 + 2 + 1 + 1 + 1 + 2;
    if buf.remaining() < FIXED {
        return Err(NetError::Codec("truncated delta record".to_owned()));
    }
    let dst_ip = std::net::Ipv4Addr::from(buf.get_u32());
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let proto_num = buf.get_u8();
    let protocol = TransportProtocol::from_number(proto_num)
        .ok_or_else(|| NetError::Codec(format!("unknown protocol number {proto_num}")))?;
    let ttl = buf.get_u8();
    let tcp_flags = TcpFlags::from_bits(buf.get_u8());
    let ip_len = buf.get_u16();
    let packets = get_varint(buf)?;
    Ok(FlowTuple {
        src_ip: std::net::Ipv4Addr::UNSPECIFIED,
        dst_ip,
        src_port,
        dst_port,
        protocol,
        ttl,
        tcp_flags,
        ip_len,
        packets,
    })
}

/// ZigZag-map a signed delta into an unsigned varint-friendly value.
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Append one column of per-record values as varints, collapsing runs
/// of zeros: a zero value is followed by a varint count of *additional*
/// zeros it stands for. Near-constant columns (ports, protocol, flags,
/// packet counts — zero deltas) collapse to a few bytes per run.
fn put_rle_column(out: &mut Vec<u8>, vals: &[u32]) {
    let mut i = 0;
    while i < vals.len() {
        let v = vals[i];
        put_varint(out, v);
        i += 1;
        if v == 0 {
            let start = i;
            while i < vals.len() && vals[i] == 0 {
                i += 1;
            }
            put_varint(out, (i - start) as u32);
        }
    }
}

/// Branchless multi-byte LEB128 decode of the varint starting at the
/// low byte of `word` (a little-endian load, so byte `i` of the input
/// is bits `8i..8i+8`). Returns the decoded value and its encoded
/// length in bytes.
///
/// SWAR: one load replaces the per-byte loop. `!word & 0x8080…` sets
/// bit 7 of every *stop* byte (continuation bit clear); the first stop
/// byte's position — `trailing_zeros / 8` — is the varint's last byte.
/// Masking to that length, clearing the continuation bits, and
/// compacting the up-to-five 7-bit groups yields the value with no
/// data-dependent branches on the hot path.
///
/// Matches [`get_varint`] bit-for-bit on every input of ≥ 8 available
/// bytes, including the error cases: a varint of 6+ bytes overflows
/// (scalar errors at `shift >= 32`, i.e. the 6th byte), and a 5-byte
/// varint carrying more than 4 high bits overflows (scalar's
/// `shift == 28 && low > 0x0f` check becomes a `> u32::MAX` compare on
/// the compacted 35-bit value). Callers fall back to the scalar decoder
/// near the end of the buffer, where truncation must be diagnosed
/// byte-by-byte.
///
/// # Errors
///
/// Returns [`NetError::Codec`] ("varint overflows u32") exactly where
/// the scalar decoder would.
///
/// Test-only reference: the hot loop ([`get_rle_column_into`]) inlines
/// these bit tricks per window; the proptests pin this one-varint form
/// to the scalar decoder, and the windowed loop to the whole-block
/// record decoder built on it.
#[cfg(test)]
#[inline]
fn swar_varint(word: u64) -> Result<(u32, usize), NetError> {
    let stops = !word & 0x8080_8080_8080_8080;
    // stops == 0 → no terminator in 8 bytes → at least 9 encoded bytes,
    // far past the 5-byte u32 maximum; trailing_zeros()=64 maps to
    // len 9 and falls into the same overflow arm.
    let len = (stops.trailing_zeros() >> 3) as usize + 1;
    if len > 5 {
        return Err(NetError::Codec("varint overflows u32".to_owned()));
    }
    // len <= 5, so the shift is >= 24 and in range.
    let kept = word & (u64::MAX >> (64 - 8 * len));
    let data = kept & 0x7f7f_7f7f_7f7f_7f7f;
    let v = (data & 0x7f)
        | (data >> 8 & 0x7f) << 7
        | (data >> 16 & 0x7f) << 14
        | (data >> 24 & 0x7f) << 21
        | (data >> 32 & 0x7f) << 28;
    if v > u64::from(u32::MAX) {
        return Err(NetError::Codec("varint overflows u32".to_owned()));
    }
    Ok((v as u32, len))
}

/// Decode one varint from the front of `buf`, advancing it: the SWAR
/// fast path when 8 bytes are available, the scalar [`get_varint`]
/// tail path otherwise (so truncation errors are identical to the
/// byte-at-a-time decoder).
///
/// # Errors
///
/// As [`get_varint`].
///
/// Test-only reference, like [`swar_varint`].
#[cfg(test)]
#[inline]
fn take_varint(buf: &mut &[u8]) -> Result<u32, NetError> {
    if let Some(window) = buf.first_chunk::<8>() {
        let (v, len) = swar_varint(u64::from_le_bytes(*window))?;
        *buf = &buf[len..];
        Ok(v)
    } else {
        get_varint(buf)
    }
}

/// Feed one decoded varint to the RLE state machine: a zero value arms
/// `pending_run` so the *next* varint is consumed as its run length.
/// `out` is pre-zeroed, so a run (and the zero value itself) is just an
/// index bump — only nonzero values are stored. Shared by the windowed
/// and scalar-tail loops of [`get_rle_column_into`].
#[inline]
fn rle_apply(
    out: &mut [u32],
    idx: &mut usize,
    pending_run: &mut bool,
    v: u32,
) -> Result<(), NetError> {
    let n = out.len();
    if *pending_run {
        let run = v as usize;
        if run > n - *idx {
            return Err(NetError::Codec(format!(
                "zero run of {run} overflows {n}-record column"
            )));
        }
        *idx += run;
        *pending_run = false;
    } else if v == 0 {
        *idx += 1;
        *pending_run = true;
    } else {
        out[*idx] = v;
        *idx += 1;
    }
    Ok(())
}

/// Read back `n` column values written by [`put_rle_column`] into a
/// reusable buffer (previous contents are replaced). This is the block
/// decoder's hot loop: the buffer is zero-filled once up front (so RLE
/// runs never write), then each 8-byte little-endian window is loaded
/// *once* and every varint that terminates inside it decodes from the
/// shifted word — the `swar_varint` bit tricks without the per-varint
/// reload, slice narrowing, and `Vec` growth checks. A varint that
/// straddles the window end re-anchors the window at its first byte;
/// under 8 remaining bytes fall back to the scalar [`get_varint`] so
/// truncation errors stay byte-exact.
///
/// Every byte consumed from `buf` is also fed to `hasher`, exactly
/// once and in order, so the caller can verify the block checksum as a
/// side effect of decoding instead of a separate pass over the payload
/// — the FNV-1a multiply chain is pure latency, and the decode work
/// executes under it for free (see
/// [`decode_block_checked_columnar_into`]). On an `Err` return the
/// hasher is left mid-stream and must not be trusted; the checked
/// wrappers re-hash from scratch on that cold path.
fn get_rle_column_into(
    buf: &mut &[u8],
    n: usize,
    vals: &mut Vec<u32>,
    hasher: &mut Fnv1a,
) -> Result<(), NetError> {
    let overflow = || NetError::Codec("varint overflows u32".to_owned());
    vals.clear();
    vals.resize(n, 0);
    let out = &mut vals[..];
    let mut idx = 0usize;
    let mut pending_run = false;
    while idx < n || pending_run {
        let Some(window) = buf.first_chunk::<8>() else {
            break;
        };
        const MSB: u64 = 0x8080_8080_8080_8080;
        let word = u64::from_le_bytes(*window);
        let stops = !word & MSB;
        if stops == 0 {
            // No terminator in 8 bytes → at least 9 encoded bytes,
            // far past the 5-byte u32 maximum.
            return Err(overflow());
        }
        // Burst path: all eight bytes are 1-byte varints with no zero
        // among them (near-constant columns decay to this shape), so
        // the window is eight column values verbatim.
        if stops == MSB && idx + 8 <= n && !pending_run {
            let zeros = word.wrapping_sub(0x0101_0101_0101_0101) & !word & MSB;
            if zeros == 0 {
                for k in 0..8 {
                    out[idx + k] = ((word >> (8 * k)) & 0x7f) as u32;
                }
                idx += 8;
                hasher.update(&buf[..8]);
                *buf = &buf[8..];
                continue;
            }
        }
        // Walk the stop bytes via clear-lowest-set-bit: the only
        // loop-carried chain is `s &= s - 1` (one cycle), so the
        // extraction of varint j+1 overlaps the extraction of varint j
        // instead of waiting on a reloaded window address.
        let mut s = stops;
        let mut consumed = 0usize;
        while s != 0 {
            let end = (s.trailing_zeros() >> 3) as usize;
            let len = end + 1 - consumed;
            let piece = word >> (8 * consumed);
            let v = if len <= 4 {
                // ≤ 28 data bits: no overflow is possible, and the
                // 7-bit groups compact with constant shifts (group k
                // is `(q >> k) & (0x7f << 7k)`).
                let q = piece & (u64::MAX >> (64 - 8 * len));
                (q & 0x7f) | (q >> 1 & 0x3f80) | (q >> 2 & 0x1f_c000) | (q >> 3 & 0x0fe0_0000)
            } else {
                if len > 5 {
                    return Err(overflow());
                }
                let data = piece & 0x7f_7f7f_7f7f;
                let v = (data & 0x7f)
                    | (data >> 8 & 0x7f) << 7
                    | (data >> 16 & 0x7f) << 14
                    | (data >> 24 & 0x7f) << 21
                    | (data >> 32 & 0x7f) << 28;
                if v > u64::from(u32::MAX) {
                    return Err(overflow());
                }
                v
            };
            s &= s - 1;
            consumed = end + 1;
            rle_apply(out, &mut idx, &mut pending_run, v as u32)?;
            if !(idx < n || pending_run) {
                hasher.update(&buf[..consumed]);
                *buf = &buf[consumed..];
                return Ok(());
            }
        }
        // A varint straddling the window end re-anchors at its first
        // byte; the next load decodes it whole (or the scalar tail
        // diagnoses truncation).
        hasher.update(&buf[..consumed]);
        *buf = &buf[consumed..];
    }
    // Fewer than 8 bytes left: scalar decode, so a buffer that ends
    // mid-varint reports "truncated varint" exactly like the
    // byte-at-a-time decoder.
    while idx < n || pending_run {
        let before = *buf;
        let v = get_varint(buf)?;
        hasher.update(&before[..before.len() - buf.len()]);
        rle_apply(out, &mut idx, &mut pending_run, v)?;
    }
    Ok(())
}

/// Encode one v3 block: each field becomes a delta column (predictors
/// start at zero, so blocks decode independently). Source addresses are
/// ascending in delta files, so they use plain wrapping deltas; every
/// other field uses zigzag deltas so small oscillations stay small.
fn encode_block(records: &[&FlowTuple]) -> Vec<u8> {
    let n = records.len();
    let mut out = Vec::with_capacity(n * 8);
    let mut col = Vec::with_capacity(n);
    let fill = |vals: &mut Vec<u32>, f: &mut dyn FnMut(&FlowTuple) -> u32| {
        vals.clear();
        vals.extend(records.iter().map(|r| f(r)));
    };
    let mut prev = 0u32;
    fill(&mut col, &mut |r| {
        let ip = u32::from(r.src_ip);
        let d = ip.wrapping_sub(prev);
        prev = ip;
        d
    });
    put_rle_column(&mut out, &col);
    let mut prev = 0u32;
    fill(&mut col, &mut |r| {
        let ip = u32::from(r.dst_ip);
        let d = zigzag(ip.wrapping_sub(prev) as i32);
        prev = ip;
        d
    });
    put_rle_column(&mut out, &col);
    for field in [
        (&|r: &FlowTuple| i32::from(r.src_port)) as &dyn Fn(&FlowTuple) -> i32,
        &|r| i32::from(r.dst_port),
        &|r| i32::from(r.protocol.number()),
        &|r| i32::from(r.ttl),
        &|r| i32::from(r.tcp_flags.bits()),
        &|r| i32::from(r.ip_len),
    ] {
        let mut prev = 0i32;
        fill(&mut col, &mut |r| {
            let v = field(r);
            let d = zigzag(v - prev);
            prev = v;
            d
        });
        put_rle_column(&mut out, &col);
    }
    let mut prev = 0u32;
    fill(&mut col, &mut |r| {
        let d = zigzag(r.packets.wrapping_sub(prev) as i32);
        prev = r.packets;
        d
    });
    put_rle_column(&mut out, &col);
    out
}

/// Decode one v3 block of `count` records (inverse of [`encode_block`])
/// into `scratch.flows`, reusing `scratch.cols` as column buffers.
/// `hasher` receives the payload bytes as they are consumed (see
/// [`get_rle_column_into`]); after an `Ok` return it has covered the
/// whole payload.
fn decode_block_into(
    payload: &[u8],
    count: usize,
    scratch: &mut BlockScratch,
    hasher: &mut Fnv1a,
) -> Result<(), NetError> {
    use crate::protocol::{TcpFlags, TransportProtocol};
    let mut buf = payload;
    for col in scratch.cols.iter_mut() {
        get_rle_column_into(&mut buf, count, col, hasher)?;
    }
    if !buf.is_empty() {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after {count}-record block",
            buf.len()
        )));
    }
    let [src, dst, src_port, dst_port, proto, ttl, flags, ip_len, packets] = &scratch.cols;
    // Checked accumulators: bounded fields must land back in range, or
    // the block is structurally corrupt.
    fn bounded(prev: &mut i32, delta: u32, max: i32, field: &str) -> Result<i32, NetError> {
        let v = prev
            .checked_add(unzigzag(delta))
            .filter(|v| (0..=max).contains(v))
            .ok_or_else(|| NetError::Codec(format!("{field} delta out of range")))?;
        *prev = v;
        Ok(v)
    }
    let flows = &mut scratch.flows;
    flows.clear();
    flows.reserve(count);
    let (mut p_src, mut p_dst, mut p_pk) = (0u32, 0u32, 0u32);
    let (mut p_sp, mut p_dp, mut p_proto, mut p_ttl, mut p_fl, mut p_len) =
        (0i32, 0i32, 0i32, 0i32, 0i32, 0i32);
    for i in 0..count {
        p_src = p_src.wrapping_add(src[i]);
        p_dst = p_dst.wrapping_add(unzigzag(dst[i]) as u32);
        p_pk = p_pk.wrapping_add(unzigzag(packets[i]) as u32);
        let proto_num = bounded(&mut p_proto, proto[i], 255, "protocol")? as u8;
        let protocol = TransportProtocol::from_number(proto_num)
            .ok_or_else(|| NetError::Codec(format!("unknown protocol number {proto_num}")))?;
        flows.push(FlowTuple {
            src_ip: std::net::Ipv4Addr::from(p_src),
            dst_ip: std::net::Ipv4Addr::from(p_dst),
            src_port: bounded(&mut p_sp, src_port[i], 65_535, "src_port")? as u16,
            dst_port: bounded(&mut p_dp, dst_port[i], 65_535, "dst_port")? as u16,
            protocol,
            ttl: bounded(&mut p_ttl, ttl[i], 255, "ttl")? as u8,
            tcp_flags: TcpFlags::from_bits(bounded(&mut p_fl, flags[i], 255, "tcp_flags")? as u8),
            ip_len: bounded(&mut p_len, ip_len[i], 65_535, "ip_len")? as u16,
            packets: p_pk,
        });
    }
    Ok(())
}

/// One decoded v3 block in struct-of-arrays form: every column fully
/// un-delta'd back to record values, plus the same records materialized
/// as [`FlowTuple`]s for per-record consumers. The column buffers and
/// the record buffer are capacity-reused across blocks (and across
/// hours, if the caller keeps the scratch), exactly like
/// `BlockScratch` — a sequential decode's steady state allocates
/// nothing.
///
/// In a delta-encoded file (the default; see
/// [`StoreOptions::delta_encode`]) records are sorted by
/// `(src_ip, dst_ip, dst_port)` before blocking, so
/// [`ColumnBlock::src_ip`] is **ascending within the block** — the
/// invariant the merge-join correlation passes
/// (`CorrelationIndex::correlate_sorted_block`,
/// `IntelIndex::lookup_sorted_block` downstream) exploit to replace
/// per-record binary searches with a forward gallop. Non-delta files
/// carry no such guarantee; batched consumers must stay correct (if
/// slower) on arbitrary column order.
#[derive(Debug, Default)]
pub struct ColumnBlock {
    /// Per-column buffers in on-disk column order (src, dst, src_port,
    /// dst_port, protocol, ttl, tcp_flags, ip_len, packets). Filled
    /// with raw deltas by the RLE pass, then rewritten in place to
    /// reconstructed record values by the un-delta passes.
    cols: [Vec<u32>; COLUMNS],
    /// The block's records, assembled from the reconstructed columns.
    flows: Vec<FlowTuple>,
}

impl ColumnBlock {
    /// Records in this block.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Source addresses as big-endian `u32`s, ascending when the file
    /// was delta-encoded (see the type-level invariant).
    pub fn src_ip(&self) -> &[u32] {
        &self.cols[0]
    }

    /// Destination addresses as big-endian `u32`s.
    pub fn dst_ip(&self) -> &[u32] {
        &self.cols[1]
    }

    /// Source ports (each value fits `u16`).
    pub fn src_port(&self) -> &[u32] {
        &self.cols[2]
    }

    /// Destination ports (each value fits `u16`).
    pub fn dst_port(&self) -> &[u32] {
        &self.cols[3]
    }

    /// Transport protocol numbers (each a valid
    /// [`crate::protocol::TransportProtocol`] number).
    pub fn protocol(&self) -> &[u32] {
        &self.cols[4]
    }

    /// TCP flag bytes (each value fits `u8`).
    pub fn tcp_flags(&self) -> &[u32] {
        &self.cols[6]
    }

    /// Per-record packet counts.
    pub fn packets(&self) -> &[u32] {
        &self.cols[8]
    }

    /// The same records row-wise, for per-record consumers and the
    /// [`FlowSink::visit_block`] fallback. `flows()[i]` is the record
    /// whose fields the column slices hold at index `i`.
    pub fn flows(&self) -> &[FlowTuple] {
        &self.flows
    }
}

/// Width of the fixed-size lanes the un-delta passes operate on. Eight
/// `u32`s fill a 256-bit vector register; the passes are written as
/// plain array arithmetic over `[u32; 8]` chunks (no `std::arch`) so
/// the autovectorizer can pick whatever width the target has.
const LANES: usize = 8;

/// In-place wrapping prefix sum: `vals[i] = vals[0] + … + vals[i]`
/// (mod 2³²). This is the batched inverse of per-record
/// `prev = prev.wrapping_add(delta)` with the predictor starting at 0.
///
/// The serial dependency is broken into `[u32; 8]` lanes: each chunk
/// runs a log-step inclusive scan (offsets 1, 2, 4 — lane-local shifts
/// and adds with no cross-iteration dependency, which autovectorizes),
/// then the running carry of all prior chunks is added to every lane.
/// The tail shorter than a chunk falls back to the scalar recurrence.
fn prefix_sum_wrapping(vals: &mut [u32]) {
    let mut carry = 0u32;
    let mut chunks = vals.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let lane: &mut [u32; LANES] = chunk.try_into().expect("LANES-wide chunk");
        for shift in [1, 2, 4] {
            let prev = *lane;
            for i in shift..LANES {
                lane[i] = lane[i].wrapping_add(prev[i - shift]);
            }
        }
        for v in lane.iter_mut() {
            *v = v.wrapping_add(carry);
        }
        carry = lane[LANES - 1];
    }
    for v in chunks.into_remainder() {
        carry = carry.wrapping_add(*v);
        *v = carry;
    }
}

/// Fused [`unzigzag`] + wrapping prefix sum over a whole column: the
/// batched inverse of `prev = prev.wrapping_add(unzigzag(delta))` with
/// the predictor starting at 0. Same [`LANES`]-wide log-step scan as
/// [`prefix_sum_wrapping`], with the zigzag bit transform folded into
/// the chunk load so the column is read and written exactly once.
/// Two's-complement wrapping makes the `u32` arithmetic exact for the
/// `i32`-accumulated columns as well.
///
/// Returns the bitwise OR of every reconstructed value: for a bounded
/// column whose limit is `2^k - 1`, `or & !max == 0` proves every
/// value is in range without a second pass (see the wrapping-exactness
/// argument on [`decode_block_columnar_into`]), so the per-column
/// validation scan only runs on corrupt blocks.
fn unzigzag_prefix_sum(vals: &mut [u32]) -> u32 {
    let mut carry = 0u32;
    let mut seen = 0u32;
    let mut chunks = vals.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let lane: &mut [u32; LANES] = chunk.try_into().expect("LANES-wide chunk");
        for v in lane.iter_mut() {
            *v = (*v >> 1) ^ (*v & 1).wrapping_neg();
        }
        for shift in [1, 2, 4] {
            let prev = *lane;
            for i in shift..LANES {
                lane[i] = lane[i].wrapping_add(prev[i - shift]);
            }
        }
        for v in lane.iter_mut() {
            *v = v.wrapping_add(carry);
            seen |= *v;
        }
        carry = lane[LANES - 1];
    }
    for v in chunks.into_remainder() {
        carry = carry.wrapping_add((*v >> 1) ^ (*v & 1).wrapping_neg());
        *v = carry;
        seen |= carry;
    }
    seen
}

/// Index of the first element matching `bad`, scanned [`LANES`] at a
/// time: each chunk ORs the predicate into one flag with no early exit
/// inside the chunk (so the compares vectorize), and only a matching
/// chunk is rescanned for the exact index.
fn first_where(vals: &[u32], bad: impl Fn(u32) -> bool) -> Option<usize> {
    let mut chunks = vals.chunks_exact(LANES);
    let mut base = 0;
    for chunk in &mut chunks {
        let mut any = false;
        for &v in chunk {
            any |= bad(v);
        }
        if any {
            return chunk.iter().position(|&v| bad(v)).map(|i| base + i);
        }
        base += LANES;
    }
    chunks
        .remainder()
        .iter()
        .position(|&v| bad(v))
        .map(|i| base + i)
}

/// The column-at-a-time block decoder: same wire format, same outputs,
/// and same error strings as the record-at-a-time [`decode_block_into`]
/// (proptest-pinned), but structured for throughput — the RLE/SWAR
/// varint loop runs striding one column at a time, every column is
/// un-delta'd by a [`LANES`]-wide wrapping pass, range validation is a
/// chunked whole-column scan, and record assembly is a branch-free
/// transpose with no serial dependencies.
///
/// Wrapping un-delta is exact for the bounded columns too, not just
/// the wrapping-accumulator ones: the record decoder's checked
/// recurrence keeps its accumulator in `0..=max` (max ≤ 65,535), so a
/// `checked_add` overflow can only be positive and always wraps the
/// small accumulator negative — and a negative `i32` is a huge `u32`.
/// Hence the first record where the checked recurrence fails (overflow
/// or out of range) is exactly the first record whose *wrapping*
/// reconstruction exceeds `max` as a `u32`. Values past a column's
/// first failure are garbage, but the block is rejected before
/// anything reads them.
///
/// Error-order contract: the record decoder fails at the *first* bad
/// record, checking fields in the order protocol → src_port → dst_port
/// → ttl → tcp_flags → ip_len within a record. Columnar validation
/// finds each column's first failure independently, then reports the
/// failure with the smallest `(record index, field order)` — the exact
/// error the record-at-a-time decoder would have raised.
///
/// `hasher` receives the payload bytes as they are consumed (see
/// [`get_rle_column_into`]); after an `Ok` return it has covered the
/// whole payload.
fn decode_block_columnar_into(
    payload: &[u8],
    count: usize,
    block: &mut ColumnBlock,
    hasher: &mut Fnv1a,
) -> Result<(), NetError> {
    use crate::protocol::{TcpFlags, TransportProtocol};
    let mut buf = payload;
    for col in block.cols.iter_mut() {
        get_rle_column_into(&mut buf, count, col, hasher)?;
    }
    if !buf.is_empty() {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after {count}-record block",
            buf.len()
        )));
    }
    prefix_sum_wrapping(&mut block.cols[0]); // src: plain deltas
    let mut ors = [0u32; COLUMNS];
    for (or, col) in ors.iter_mut().zip(block.cols.iter_mut()).skip(1) {
        *or = unzigzag_prefix_sum(col); // every other column: zigzag deltas
    }
    // Validation: the OR aggregates prove the bounded columns in range
    // with no extra pass (every limit is `2^k - 1`); only a corrupt
    // column is rescanned for its first failure (see the
    // wrapping-exactness argument above — "out of range" is just
    // `u32 > max` on the reconstructed values), and multi-column
    // corruption resolves to the error the record-at-a-time decoder
    // hits first. The protocol column always scans for its second
    // per-record check (`from_number`) at the same field rank; an
    // unknown-but-in-range number only reports when no earlier record
    // failed, which the min-(record, rank) resolution guarantees.
    let mut first: Option<(usize, usize, NetError)> = None;
    let mut consider = |rank: usize, failed: Option<(usize, NetError)>| {
        if let Some((i, e)) = failed {
            if first
                .as_ref()
                .is_none_or(|(fi, fr, _)| (i, rank) < (*fi, *fr))
            {
                first = Some((i, rank, e));
            }
        }
    };
    let proto = &block.cols[4];
    consider(
        0,
        first_where(proto, |v| {
            v > 255 || TransportProtocol::from_number(v as u8).is_none()
        })
        .map(|i| {
            let v = proto[i];
            if v > 255 {
                (i, NetError::Codec("protocol delta out of range".to_owned()))
            } else {
                (
                    i,
                    NetError::Codec(format!("unknown protocol number {}", v as u8)),
                )
            }
        }),
    );
    for (rank, col, max, field) in [
        (1usize, 2usize, 65_535, "src_port"),
        (2, 3, 65_535, "dst_port"),
        (3, 5, 255, "ttl"),
        (4, 6, 255, "tcp_flags"),
        (5, 7, 65_535, "ip_len"),
    ] {
        if ors[col] & !max == 0 {
            continue;
        }
        consider(
            rank,
            first_where(&block.cols[col], |v| v > max)
                .map(|i| (i, NetError::Codec(format!("{field} delta out of range")))),
        );
    }
    if let Some((_, _, e)) = first {
        return Err(e);
    }
    // Transpose the reconstructed columns into records. Every value was
    // validated above, so this loop carries no error branches; the
    // up-front reslices let the indexing elide bounds checks, and the
    // protocol table replaces the `from_number` match, whose branches
    // mispredict on mixed TCP/UDP traffic (only validated numbers are
    // ever looked up, so the filler entries are unreachable).
    const PROTO_BY_NUMBER: [TransportProtocol; 256] = {
        let mut t = [TransportProtocol::Tcp; 256];
        t[TransportProtocol::Icmp as usize] = TransportProtocol::Icmp;
        t[TransportProtocol::Udp as usize] = TransportProtocol::Udp;
        t
    };
    let ColumnBlock { cols, flows } = block;
    let [src, dst, src_port, dst_port, proto, ttl, flags, ip_len, packets] = cols;
    let (src, dst, packets) = (&src[..count], &dst[..count], &packets[..count]);
    let (src_port, dst_port, proto) = (&src_port[..count], &dst_port[..count], &proto[..count]);
    let (ttl, flags, ip_len) = (&ttl[..count], &flags[..count], &ip_len[..count]);
    flows.clear();
    flows.reserve(count);
    for i in 0..count {
        flows.push(FlowTuple {
            src_ip: std::net::Ipv4Addr::from(src[i]),
            dst_ip: std::net::Ipv4Addr::from(dst[i]),
            src_port: src_port[i] as u16,
            dst_port: dst_port[i] as u16,
            protocol: PROTO_BY_NUMBER[(proto[i] & 0xff) as usize],
            ttl: ttl[i] as u8,
            tcp_flags: TcpFlags::from_bits(flags[i] as u8),
            ip_len: ip_len[i] as u16,
            packets: packets[i],
        });
    }
    Ok(())
}

/// Verify one block's checksum and run the columnar decoder into
/// `block` — the batched counterpart of [`decode_block_checked_into`],
/// with identical error strings and the same interleaved
/// checksum-while-decoding scheme (see there for why fusing the
/// passes is faster).
fn decode_block_checked_columnar_into(
    v3: &V3Block<'_>,
    block: &mut ColumnBlock,
) -> Result<(), NetError> {
    let mut hasher = Fnv1a::new();
    let decoded = decode_block_columnar_into(v3.payload, v3.count as usize, block, &mut hasher);
    resolve_block_checksum(decoded, &hasher, v3)
}

/// Streaming 64-bit FNV-1a, so the checksum can cover discontiguous
/// regions (header prefix + payload) without concatenating them.
/// Shared with the segment container ([`crate::segment`]), whose
/// headers use the same hash.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    #[inline]
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub(crate) fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// 64-bit FNV-1a over `data`.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.update(data);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{IcmpType, TcpFlags};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn flows() -> Vec<FlowTuple> {
        vec![
            FlowTuple::tcp(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(44, 1, 1, 1),
                40000,
                23,
                TcpFlags::SYN,
            ),
            FlowTuple::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(44, 5, 5, 5),
                53,
                37547,
            )
            .with_packets(7),
            FlowTuple::icmp(
                Ipv4Addr::new(5, 5, 5, 5),
                Ipv4Addr::new(44, 7, 7, 7),
                IcmpType::EchoRequest,
            ),
        ]
    }

    /// Deterministic xorshift flow generator for tests that need more than a
    /// handful of records (e.g. multi-block v3 payloads).
    fn sample_flows(n: usize) -> Vec<FlowTuple> {
        let mut state = 0x1234_5678_9abc_def0u64 ^ (n as u64);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let r = next();
                let src = Ipv4Addr::from((r >> 32) as u32 | 1);
                let dst = Ipv4Addr::from(0x2c00_0000 | (r as u32 & 0x00ff_ffff));
                match r % 3 {
                    0 => FlowTuple::tcp(src, dst, (r >> 16) as u16 | 1024, 23, TcpFlags::SYN)
                        .with_packets((r % 13) as u32 + 1),
                    1 => FlowTuple::udp(src, dst, (r >> 24) as u16 | 1024, 5060),
                    _ => FlowTuple::icmp(src, dst, IcmpType::EchoRequest),
                }
            })
            .collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotscope-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sorted(mut v: Vec<FlowTuple>) -> Vec<FlowTuple> {
        v.sort_by_key(|f| (u32::from(f.src_ip), u32::from(f.dst_ip), f.dst_port));
        v
    }

    #[test]
    fn roundtrip_delta_and_plain() {
        for format in [StoreFormat::V2, StoreFormat::V3] {
            for delta in [true, false] {
                let opts = StoreOptions {
                    delta_encode: delta,
                    format,
                    ..StoreOptions::default()
                };
                let hour = UnixHour::new(414_432);
                let bytes = encode_hour(hour, &flows(), opts);
                let (h, back) = decode_hour(&bytes).unwrap();
                assert_eq!(h, hour);
                assert_eq!(sorted(back), sorted(flows()), "{format:?} delta={delta}");
            }
        }
    }

    #[test]
    fn plain_mode_preserves_order() {
        for format in [StoreFormat::V2, StoreFormat::V3] {
            let opts = StoreOptions {
                delta_encode: false,
                format,
                ..StoreOptions::default()
            };
            let bytes = encode_hour(UnixHour::new(1), &flows(), opts);
            let (_, back) = decode_hour(&bytes).unwrap();
            assert_eq!(back, flows(), "{format:?}");
        }
    }

    #[test]
    fn delta_mode_is_smaller_for_clustered_sources() {
        // Sources in one /24 delta-encode to 1-2 byte deltas.
        let many: Vec<FlowTuple> = (0..500u32)
            .map(|i| {
                FlowTuple::tcp(
                    Ipv4Addr::from(0xC000_0200 + i % 256),
                    Ipv4Addr::new(44, 0, 0, 1),
                    40000,
                    23,
                    TcpFlags::SYN,
                )
            })
            .collect();
        let d = encode_hour(
            UnixHour::new(1),
            &many,
            StoreOptions {
                delta_encode: true,
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        let p = encode_hour(
            UnixHour::new(1),
            &many,
            StoreOptions {
                delta_encode: false,
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        assert!(d.len() < p.len(), "delta {} vs plain {}", d.len(), p.len());
    }

    #[test]
    fn empty_hour_roundtrips() {
        let bytes = encode_hour(UnixHour::new(7), &[], StoreOptions::default());
        let (h, back) = decode_hour(&bytes).unwrap();
        assert_eq!(h, UnixHour::new(7));
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        bytes[0] = b'X';
        assert!(matches!(decode_hour(&bytes), Err(NetError::Codec(_))));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let err = decode_hour(&bytes).unwrap_err();
        assert!(format!("{err}").contains("checksum"));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        for cut in [0, 5, 20, bytes.len() - 1] {
            assert!(decode_hour(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode_hour(
            UnixHour::new(1),
            &flows(),
            StoreOptions {
                delta_encode: false,
                ..StoreOptions::default()
            },
        );
        // Appending bytes breaks the checksum; to test the trailing-byte
        // check specifically, rebuild with a forged checksum.
        let extra = [0u8; 3];
        bytes.extend_from_slice(&extra);
        assert!(decode_hour(&bytes).is_err());
    }

    #[test]
    fn store_write_read_cycle() {
        let dir = tmpdir("cycle");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let hour = UnixHour::from_unix_secs(AnalysisWindow::PAPER_START_SECS);
        store.write_hour(hour, &flows()).unwrap();
        assert!(store.has_hour(hour));
        assert!(!store.has_hour(hour.next()));
        let back = store.read_hour(hour).unwrap();
        assert_eq!(sorted(back), sorted(flows()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_missing_hour_is_io_error() {
        let dir = tmpdir("missing");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let err = store.read_hour(UnixHour::new(42)).unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_detects_renamed_hour_file() {
        let dir = tmpdir("renamed");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let h1 = UnixHour::new(100);
        let h2 = UnixHour::new(101);
        store.write_hour(h1, &flows()).unwrap();
        fs::create_dir_all(store.hour_path(h2).parent().unwrap()).unwrap();
        fs::rename(store.hour_path(h1), store.hour_path(h2)).unwrap();
        let err = store.read_hour(h2).unwrap_err();
        assert!(format!("{err}").contains("claims hour"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hours_present_and_missing_partition_window() {
        let dir = tmpdir("present");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let window = AnalysisWindow::short(5);
        let hours: Vec<UnixHour> = window.iter_hours().collect();
        store.write_hour(hours[0], &flows()).unwrap();
        store.write_hour(hours[3], &[]).unwrap();
        let present = store.hours_present(&window);
        let missing = store.hours_missing(&window);
        assert_eq!(present, vec![hours[0], hours[3]]);
        assert_eq!(missing.len(), 3);
        assert_eq!(present.len() + missing.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_root() {
        assert!(FlowStore::open("/definitely/not/here-iotscope").is_err());
    }

    #[test]
    fn files_group_by_day_directory() {
        let store = FlowStore {
            root: PathBuf::from("/data"),
            options: StoreOptions::default(),
            metrics: StoreMetrics::detached(),
            segments: Arc::default(),
        };
        let p = store.hour_path(UnixHour::new(49));
        assert_eq!(p, PathBuf::from("/data/day-2/hour-49.ft"));
    }

    #[test]
    fn v1_files_still_decode() {
        for delta in [true, false] {
            let opts = StoreOptions {
                delta_encode: delta,
                ..StoreOptions::default()
            };
            let hour = UnixHour::new(414_432);
            let bytes = encode_hour_v1(hour, &flows(), opts);
            assert_eq!(&bytes[..7], MAGIC_V1);
            let (h, back) = decode_hour(&bytes).unwrap();
            assert_eq!(h, hour);
            assert_eq!(sorted(back), sorted(flows()), "delta={delta}");
        }
    }

    #[test]
    fn new_files_are_v3() {
        let bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        assert_eq!(&bytes[..7], MAGIC_V3);
    }

    #[test]
    fn v2_format_option_still_writes_v2() {
        let bytes = encode_hour(
            UnixHour::new(1),
            &flows(),
            StoreOptions {
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        assert_eq!(&bytes[..7], MAGIC_V2);
        let (_, back) = decode_hour(&bytes).unwrap();
        assert_eq!(sorted(back), sorted(flows()));
    }

    #[test]
    fn header_corruption_detected_in_v2_and_v3() {
        // Any header byte flip — flags, hour, or count — must fail the
        // checksum (v1's payload-only hash missed all of these). In v3
        // the header hash additionally covers the block index.
        for format in [StoreFormat::V2, StoreFormat::V3] {
            let clean = encode_hour(
                UnixHour::new(414_432),
                &flows(),
                StoreOptions {
                    format,
                    ..StoreOptions::default()
                },
            );
            for idx in 7..HEADER_HASHED {
                let mut bytes = clean.clone();
                bytes[idx] ^= 0x01;
                let err = decode_hour(&bytes).unwrap_err();
                assert!(
                    format!("{err}").contains("checksum")
                        || format!("{err}").contains("implausible"),
                    "{format:?} byte {idx} flip gave: {err}"
                );
            }
        }
    }

    #[test]
    fn v3_index_corruption_fails_even_with_quarantine() {
        let clean = encode_hour(UnixHour::new(9), &flows(), StoreOptions::default());
        // Flip a byte inside the block index (just past the header).
        let mut bytes = clean.clone();
        bytes[HEADER + 2] ^= 0x40;
        let opts = DecodeOptions {
            threads: 1,
            quarantine: true,
        };
        let err = decode_hour_with(&bytes, opts).unwrap_err();
        assert!(
            format!("{err}").contains("checksum") || format!("{err}").contains("implausible"),
            "got: {err}"
        );
    }

    #[test]
    fn forged_count_rejected_without_huge_alloc() {
        // Fabricate a v1 file whose count claims ~4 billion records but
        // whose payload is tiny. Before the plausibility clamp this
        // preallocated count * sizeof(FlowTuple) bytes up front.
        let mut bytes = encode_hour_v1(UnixHour::new(1), &flows(), StoreOptions::default());
        let count_off = 7 + 1 + 8;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = decode_hour(&bytes).unwrap_err();
        assert!(
            format!("{err}").contains("implausible record count"),
            "got: {err}"
        );
    }

    #[test]
    fn count_plausibility_bound_is_tight() {
        // count == payload/MIN_RECORD_BYTES must pass (minimal delta
        // records really are MIN_RECORD_BYTES long), one more must not.
        let tiny: Vec<FlowTuple> = (0..4u32)
            .map(|i| {
                FlowTuple::tcp(
                    Ipv4Addr::from(i + 1),
                    Ipv4Addr::from(0u32),
                    0,
                    0,
                    TcpFlags::from_bits(0),
                )
            })
            .map(|f| FlowTuple {
                ip_len: 0,
                ttl: 0,
                ..f
            })
            .collect();
        let bytes = encode_hour(
            UnixHour::new(1),
            &tiny,
            StoreOptions {
                delta_encode: true,
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        let payload_len = bytes.len() - HEADER;
        assert_eq!(
            payload_len,
            tiny.len() * MIN_RECORD_BYTES,
            "minimal records should hit the MIN_RECORD_BYTES floor"
        );
        assert!(decode_hour(&bytes).is_ok());
    }

    #[test]
    fn write_goes_through_tmp_and_renames() {
        let dir = tmpdir("atomic");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let hour = UnixHour::new(100);
        store.write_hour(hour, &flows()).unwrap();
        let tmp = store.hour_path(hour).with_extension("ft.tmp");
        assert!(!tmp.exists(), "temp file must not survive a clean write");
        assert!(store.has_hour(hour));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_file_is_not_an_hour() {
        // An interrupted writer dies between create and rename; the
        // half-written temp file must be invisible to readers.
        let dir = tmpdir("tmpfile");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let window = AnalysisWindow::short(3);
        let hours: Vec<UnixHour> = window.iter_hours().collect();
        store.write_hour(hours[0], &flows()).unwrap();
        let tmp = store.hour_path(hours[1]).with_extension("ft.tmp");
        fs::create_dir_all(tmp.parent().unwrap()).unwrap();
        let full = encode_hour(hours[1], &flows(), StoreOptions::default());
        fs::write(&tmp, &full[..full.len() / 2]).unwrap();
        assert!(!store.has_hour(hours[1]));
        assert_eq!(store.hours_present(&window), vec![hours[0]]);
        assert!(matches!(store.read_hour(hours[1]), Err(NetError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn instrumented_store_counts_reads_writes_and_corruption() {
        let registry = iotscope_obs::Registry::new();
        let dir = tmpdir("metrics");
        let store = FlowStore::create(&dir, StoreOptions::default())
            .unwrap()
            .instrumented(&registry);
        let hours = [UnixHour::new(40), UnixHour::new(41)];
        for h in hours {
            store.write_hour(h, &flows()).unwrap();
        }
        for h in hours {
            store.read_hour(h).unwrap();
        }
        let on_disk: u64 = hours
            .iter()
            .map(|h| std::fs::metadata(store.hour_path(*h)).unwrap().len())
            .sum();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.hours_written"), Some(2));
        assert_eq!(snap.counter("store.hours_read"), Some(2));
        assert_eq!(snap.counter("store.bytes_written"), Some(on_disk));
        assert_eq!(snap.counter("store.bytes_read"), Some(on_disk));
        assert_eq!(
            snap.counter("store.records_written"),
            Some(2 * flows().len() as u64)
        );
        assert_eq!(
            snap.counter("store.records_decoded"),
            Some(2 * flows().len() as u64)
        );
        assert_eq!(snap.counter("store.checksum_failures"), Some(0));

        // Corrupt one file: the failed decode is counted, the partial
        // read still adds its bytes.
        let victim = store.hour_path(hours[0]);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        assert!(store.read_hour(hours[0]).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.checksum_failures"), Some(1));
        assert_eq!(snap.counter("store.hours_read"), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detached_store_still_works_without_registry() {
        let dir = tmpdir("detached");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        store.write_hour(UnixHour::new(7), &flows()).unwrap();
        assert_eq!(store.metrics().hours_written.get(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Paper-shaped traffic: scanners in a handful of prefixes, each
    /// sweeping dark space on one service port with ephemeral source
    /// ports — the workload the v3 columns are designed around.
    fn scan_like_flows(n: u32) -> Vec<FlowTuple> {
        (0..n)
            .map(|i| {
                let src = 0x0A00_0000 + (i % 97) * 1021;
                let dst = 0x2C00_0000 + i.wrapping_mul(2_654_435_761) % (1 << 24);
                FlowTuple::tcp(
                    Ipv4Addr::from(src),
                    Ipv4Addr::from(dst),
                    1025 + ((i.wrapping_mul(48_271)) % 64_000) as u16,
                    if i % 7 == 0 { 2323 } else { 23 },
                    TcpFlags::SYN,
                )
            })
            .collect()
    }

    #[test]
    fn v3_multi_block_roundtrip() {
        let many = scan_like_flows(BLOCK_RECORDS as u32 * 2 + 500);
        let hour = UnixHour::new(77);
        let bytes = encode_hour(hour, &many, StoreOptions::default());
        let decoded = decode_hour_with(&bytes, DecodeOptions::default()).unwrap();
        assert_eq!(decoded.hour, hour);
        assert_eq!(decoded.blocks, 3);
        assert!(decoded.quarantined.is_empty());
        assert_eq!(sorted(decoded.flows), sorted(many));
    }

    #[test]
    fn v3_parallel_decode_matches_sequential() {
        let many = scan_like_flows(BLOCK_RECORDS as u32 * 3 + 17);
        let bytes = encode_hour(UnixHour::new(5), &many, StoreOptions::default());
        let seq = decode_hour_with(&bytes, DecodeOptions::default()).unwrap();
        for threads in [2, 4, 16] {
            let par = decode_hour_with(
                &bytes,
                DecodeOptions {
                    threads,
                    quarantine: false,
                },
            )
            .unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn v3_decodes_identically_to_v2() {
        // Both formats sort delta files the same way, so the decoded
        // record sequence must match exactly, not just as multisets.
        let many = scan_like_flows(6000);
        let hour = UnixHour::new(12);
        let v2 = encode_hour(
            hour,
            &many,
            StoreOptions {
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        let v3 = encode_hour(hour, &many, StoreOptions::default());
        assert_eq!(decode_hour(&v2).unwrap().1, decode_hour(&v3).unwrap().1);
    }

    #[test]
    fn v3_is_much_smaller_than_v2_on_scan_traffic() {
        let many = scan_like_flows(20_000);
        let v2 = encode_hour(
            UnixHour::new(1),
            &many,
            StoreOptions {
                format: StoreFormat::V2,
                ..StoreOptions::default()
            },
        );
        let v3 = encode_hour(UnixHour::new(1), &many, StoreOptions::default());
        let (v2_bpr, v3_bpr) = (
            v2.len() as f64 / many.len() as f64,
            v3.len() as f64 / many.len() as f64,
        );
        assert!(
            v3_bpr <= 0.8 * v2_bpr,
            "v3 {v3_bpr:.2} B/record vs v2 {v2_bpr:.2} B/record"
        );
    }

    #[test]
    fn corrupt_block_quarantined_keeps_hour_and_counts_metric() {
        let registry = iotscope_obs::Registry::new();
        let dir = tmpdir("quarantine");
        let store = FlowStore::create(&dir, StoreOptions::default())
            .unwrap()
            .instrumented(&registry);
        let many = scan_like_flows(BLOCK_RECORDS as u32 * 2 + 100);
        let hour = UnixHour::new(50);
        store.write_hour(hour, &many).unwrap();

        // Flip one byte inside the *second* block's payload.
        let path = store.hour_path(hour);
        let mut bytes = fs::read(&path).unwrap();
        let index_end = HEADER + 4 + 3 * INDEX_ENTRY;
        let first_len =
            u32::from_be_bytes(bytes[HEADER + 8..HEADER + 12].try_into().unwrap()) as usize;
        let target = index_end + first_len + 10;
        bytes[target] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        // Strict read fails the whole hour.
        assert!(store.read_hour(hour).is_err());
        // Tolerant read keeps the other two blocks.
        let decoded = store.read_hour_tolerant(hour, 2).unwrap();
        assert_eq!(decoded.blocks, 3);
        assert_eq!(decoded.quarantined.len(), 1);
        assert_eq!(decoded.quarantined[0].index, 1);
        assert_eq!(decoded.quarantined[0].records, BLOCK_RECORDS as u32);
        assert!(decoded.quarantined[0].reason.contains("checksum"));
        assert_eq!(
            decoded.flows.len(),
            many.len() - BLOCK_RECORDS,
            "hour survives minus the quarantined block"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.block_checksum_failures"), Some(1));
        assert_eq!(snap.counter("store.blocks_read"), Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v3_forged_block_count_rejected() {
        let bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        // Forge num_blocks to a huge value; the index can't fit.
        let mut forged = bytes.clone();
        forged[HEADER..HEADER + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = decode_hour(&forged).unwrap_err();
        assert!(
            format!("{err}").contains("implausible block count"),
            "got: {err}"
        );
    }

    #[test]
    fn rle_column_roundtrips_and_rejects_overflow() {
        let vals = [5u32, 0, 0, 0, 7, 0, 1, 0, 0];
        let mut buf = Vec::new();
        put_rle_column(&mut buf, &vals);
        let mut slice = buf.as_slice();
        // Pre-populate the reuse buffer to prove it is fully replaced.
        let mut out = vec![99u32; 4];
        let mut hasher = Fnv1a::new();
        get_rle_column_into(&mut slice, vals.len(), &mut out, &mut hasher).unwrap();
        assert_eq!(out, vals);
        assert!(slice.is_empty());
        // The interleaved hash must cover exactly the consumed bytes.
        assert_eq!(hasher.finish(), fnv1a(&buf));
        // A zero run claiming more records than the column holds.
        let mut bad = Vec::new();
        put_varint(&mut bad, 0);
        put_varint(&mut bad, 100);
        let err =
            get_rle_column_into(&mut bad.as_slice(), 3, &mut out, &mut Fnv1a::new()).unwrap_err();
        assert!(format!("{err}").contains("zero run"));
    }

    /// A sink that also records slice boundaries, to prove streaming
    /// really delivers per-block (and that order is preserved).
    #[derive(Default)]
    struct ChunkSink {
        flows: Vec<FlowTuple>,
        chunks: Vec<usize>,
    }

    impl FlowSink for ChunkSink {
        fn on_flows(&mut self, flows: &[FlowTuple]) {
            self.flows.extend_from_slice(flows);
            self.chunks.push(flows.len());
        }
    }

    #[test]
    fn visit_matches_materialized_across_formats_and_threads() {
        let many = scan_like_flows(BLOCK_RECORDS as u32 * 2 + 500);
        let hour = UnixHour::new(33);
        for (format, encode_v1) in [
            (StoreFormat::V3, false),
            (StoreFormat::V2, false),
            (StoreFormat::V2, true),
        ] {
            let opts = StoreOptions {
                format,
                ..StoreOptions::default()
            };
            let bytes = if encode_v1 {
                encode_hour_v1(hour, &many, opts)
            } else {
                encode_hour(hour, &many, opts)
            };
            assert_eq!(claimed_hour(&bytes).unwrap(), hour);
            for threads in [1, 3] {
                let opts = DecodeOptions {
                    threads,
                    quarantine: false,
                };
                let materialized = decode_hour_with(&bytes, opts).unwrap();
                let mut sink = ChunkSink::default();
                let visited = decode_hour_visit(&bytes, opts, &mut sink).unwrap();
                assert_eq!(visited.hour, materialized.hour);
                assert_eq!(visited.blocks, materialized.blocks);
                assert_eq!(visited.records, materialized.flows.len());
                assert_eq!(
                    sink.flows, materialized.flows,
                    "{format:?} threads={threads}"
                );
                if format == StoreFormat::V3 {
                    // One slice per block, in order.
                    assert_eq!(sink.chunks.len(), materialized.blocks);
                    assert_eq!(sink.chunks[0], BLOCK_RECORDS);
                } else {
                    assert_eq!(sink.chunks, vec![many.len()]);
                }
            }
        }
    }

    #[test]
    fn visit_quarantines_like_materialized_decode() {
        let many = scan_like_flows(BLOCK_RECORDS as u32 * 2 + 100);
        let hour = UnixHour::new(60);
        let mut bytes = encode_hour(hour, &many, StoreOptions::default());
        // Flip one byte inside the second block's payload.
        let index_end = HEADER + 4 + 3 * INDEX_ENTRY;
        let first_len =
            u32::from_be_bytes(bytes[HEADER + 8..HEADER + 12].try_into().unwrap()) as usize;
        bytes[index_end + first_len + 10] ^= 0xff;

        // Strict streaming decode fails like the materialized one.
        let strict = DecodeOptions {
            threads: 1,
            quarantine: false,
        };
        let mut sink = ChunkSink::default();
        assert!(decode_hour_visit(&bytes, strict, &mut sink).is_err());

        for threads in [1, 2] {
            let opts = DecodeOptions {
                threads,
                quarantine: true,
            };
            let materialized = decode_hour_with(&bytes, opts).unwrap();
            let mut sink = ChunkSink::default();
            let visited = decode_hour_visit(&bytes, opts, &mut sink).unwrap();
            assert_eq!(sink.flows, materialized.flows, "threads={threads}");
            assert_eq!(visited.quarantined, materialized.quarantined);
            assert_eq!(visited.quarantined.len(), 1);
            assert_eq!(visited.quarantined[0].index, 1);
            // The corrupt block never reached the sink.
            assert_eq!(sink.chunks.len(), 2);
        }
    }

    #[test]
    fn visit_hour_for_checks_hour_before_feeding_sink() {
        let dir = tmpdir("visit-renamed");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let h1 = UnixHour::new(100);
        let h2 = UnixHour::new(101);
        store.write_hour(h1, &flows()).unwrap();
        fs::create_dir_all(store.hour_path(h2).parent().unwrap()).unwrap();
        fs::rename(store.hour_path(h1), store.hour_path(h2)).unwrap();
        let bytes = store.read_hour_bytes(h2).unwrap();
        let mut sink = ChunkSink::default();
        let err = store
            .visit_hour_for(h2, &bytes, DecodeOptions::default(), &mut sink)
            .unwrap_err();
        assert!(format!("{err}").contains("claims hour"));
        assert!(
            sink.flows.is_empty(),
            "misnamed hour must not reach the sink"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn visit_hour_for_counts_metrics_like_decode_hour_for() {
        let registry_a = iotscope_obs::Registry::new();
        let registry_b = iotscope_obs::Registry::new();
        let dir = tmpdir("visit-metrics");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let many = scan_like_flows(BLOCK_RECORDS as u32 + 50);
        let hour = UnixHour::new(70);
        store.write_hour(hour, &many).unwrap();
        let bytes = fs::read(store.hour_path(hour)).unwrap();

        let a = store.clone().instrumented(&registry_a);
        a.decode_hour_for_with(hour, &bytes, DecodeOptions::default())
            .unwrap();
        let b = store.clone().instrumented(&registry_b);
        let mut sink = ChunkSink::default();
        b.visit_hour_for(hour, &bytes, DecodeOptions::default(), &mut sink)
            .unwrap();
        assert_eq!(registry_a.snapshot(), registry_b.snapshot());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 65_535, -65_535] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn restamp_hour_matches_a_fresh_encode_in_every_format() {
        let flows = sample_flows(900);
        let from = UnixHour::new(414_456);
        let to = UnixHour::new(700_123);
        type EncoderFn = fn(UnixHour, &[FlowTuple], StoreOptions) -> Vec<u8>;
        let encoders: [EncoderFn; 3] = [encode_hour_v1, encode_hour_v2, encode_hour_v3];
        for encode in encoders {
            let mut bytes = encode(from, &flows, StoreOptions::default());
            restamp_hour(&mut bytes, to).unwrap();
            assert_eq!(
                bytes,
                encode(to, &flows, StoreOptions::default()),
                "restamp must be bit-identical to re-encoding at the new hour"
            );
            let decoded = decode_hour_with(&bytes, DecodeOptions::default()).unwrap();
            assert_eq!(decoded.hour, to);
            assert_eq!(decoded.flows.len(), flows.len());
        }
    }

    #[test]
    fn restamp_hour_rejects_garbage_without_touching_it() {
        let to = UnixHour::new(1);
        let mut short = vec![0u8; HEADER - 1];
        assert!(restamp_hour(&mut short, to).is_err());

        let mut bad_magic =
            encode_hour_v3(UnixHour::new(5), &sample_flows(10), StoreOptions::default());
        bad_magic[0] ^= 0xff;
        let before = bad_magic.clone();
        let err = restamp_hour(&mut bad_magic, to).unwrap_err().to_string();
        assert!(err.contains("bad magic"), "{err}");
        assert_eq!(bad_magic, before, "bytes must be untouched on error");

        // A v3 header whose index is cut off cannot be re-checksummed.
        let full = encode_hour_v3(UnixHour::new(5), &sample_flows(10), StoreOptions::default());
        let mut truncated = full[..HEADER + 2].to_vec();
        let err = restamp_hour(&mut truncated, to).unwrap_err().to_string();
        assert!(err.contains("truncated v3 block index"), "{err}");
    }

    /// Decode one varint with the scalar reference decoder, returning
    /// the value and consumed length (mirrors [`swar_varint`]'s shape).
    fn scalar_varint(bytes: &[u8]) -> Result<(u32, usize), NetError> {
        let mut buf = bytes;
        let v = get_varint(&mut buf)?;
        Ok((v, bytes.len() - buf.len()))
    }

    #[test]
    fn swar_varint_matches_scalar_on_known_encodings() {
        for v in [
            0u32,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            0x0fff_ffff,
            0x1000_0000,
            u32::MAX,
        ] {
            let mut enc = Vec::new();
            put_varint(&mut enc, v);
            enc.resize(8, 0xa5); // arbitrary successor bytes
            let (got, len) = swar_varint(u64::from_le_bytes(enc[..8].try_into().unwrap())).unwrap();
            assert_eq!((got, len), scalar_varint(&enc).unwrap(), "value {v}");
        }
    }

    #[test]
    fn swar_varint_overflow_cases_match_scalar() {
        // 6+ byte varint: both decoders reject at the 6th byte.
        let six = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01, 0, 0];
        // No terminator in sight: the worst case for the SWAR scan.
        let none = [0xffu8; 8];
        // 5-byte varint carrying 35 significant bits (top byte 0x1f > 0x0f).
        let wide = [0xffu8, 0xff, 0xff, 0xff, 0x1f, 0, 0, 0];
        for bytes in [six, none, wide] {
            let swar = swar_varint(u64::from_le_bytes(bytes)).unwrap_err();
            let scalar = scalar_varint(&bytes).unwrap_err();
            assert_eq!(format!("{swar}"), format!("{scalar}"), "{bytes:02x?}");
            assert!(format!("{swar}").contains("varint overflows u32"));
        }
        // 5-byte varint at exactly u32::MAX still decodes.
        let max = [0xffu8, 0xff, 0xff, 0xff, 0x0f, 0, 0, 0];
        assert_eq!(swar_varint(u64::from_le_bytes(max)).unwrap(), (u32::MAX, 5));
    }

    #[test]
    fn take_varint_scalar_tail_preserves_truncation_errors() {
        // Fewer than 8 bytes and no terminator: must report truncation,
        // exactly like the scalar decoder.
        let mut buf: &[u8] = &[0x80, 0x80];
        let err = take_varint(&mut buf).unwrap_err();
        assert!(format!("{err}").contains("truncated varint"), "{err}");
        let mut empty: &[u8] = &[];
        assert!(take_varint(&mut empty).is_err());
        // A short but complete varint decodes on the tail path too.
        let mut short: &[u8] = &[0xac, 0x02];
        assert_eq!(take_varint(&mut short).unwrap(), 300);
        assert!(short.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// The SWAR decoder and the scalar decoder agree on *arbitrary*
        /// 8-byte windows — same value, same consumed length, or the
        /// same error.
        #[test]
        fn prop_swar_varint_matches_scalar(word in any::<u64>()) {
            let bytes = word.to_le_bytes();
            let swar = swar_varint(word);
            let scalar = scalar_varint(&bytes);
            match (swar, scalar) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
                (a, b) => prop_assert!(false, "disagreement: swar {a:?}, scalar {b:?}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_encode_decode_roundtrip(
            raw in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), 0usize..3, any::<u8>(), any::<u8>(), any::<u16>(), 1u32..1_000_000),
                0..50,
            ),
            delta: bool,
            hour: u64,
        ) {
            use crate::protocol::TransportProtocol;
            let flows: Vec<FlowTuple> = raw
                .into_iter()
                .map(|(s, d, sp, dp, pi, ttl, fl, len, pk)| FlowTuple {
                    src_ip: Ipv4Addr::from(s),
                    dst_ip: Ipv4Addr::from(d),
                    src_port: sp,
                    dst_port: dp,
                    protocol: TransportProtocol::ALL[pi],
                    ttl,
                    tcp_flags: TcpFlags::from_bits(fl),
                    ip_len: len,
                    packets: pk,
                })
                .collect();
            for format in [StoreFormat::V2, StoreFormat::V3] {
                let opts = StoreOptions { delta_encode: delta, format, ..StoreOptions::default() };
                let bytes = encode_hour(UnixHour::new(hour), &flows, opts);
                let (h, back) = decode_hour(&bytes).unwrap();
                prop_assert_eq!(h, UnixHour::new(hour));
                prop_assert_eq!(sorted(back), sorted(flows.clone()));
            }
        }
    }

    /// One record of the inline tuple strategy the decoder-equivalence
    /// proptests generate: every `FlowTuple` field as a plain integer.
    type RawFlow = (u32, u32, u16, u16, usize, u8, u8, u16, u32);

    /// Materialize the inline tuple strategy used by the roundtrip
    /// proptest into flows.
    fn tuples_to_flows(raw: Vec<RawFlow>) -> Vec<FlowTuple> {
        use crate::protocol::TransportProtocol;
        raw.into_iter()
            .map(|(s, d, sp, dp, pi, ttl, fl, len, pk)| FlowTuple {
                src_ip: Ipv4Addr::from(s),
                dst_ip: Ipv4Addr::from(d),
                src_port: sp,
                dst_port: dp,
                protocol: TransportProtocol::ALL[pi],
                ttl,
                tcp_flags: TcpFlags::from_bits(fl),
                ip_len: len,
                packets: pk,
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The columnar decoder is bit-identical to the record-at-a-time
        /// decoder: same flows on valid payloads (mutations included when
        /// they happen to stay decodable), and byte-identical error
        /// strings on corrupt ones.
        #[test]
        fn prop_columnar_decode_matches_record_decoder(
            raw in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), 0usize..3, any::<u8>(), any::<u8>(), any::<u16>(), 1u32..1_000_000),
                0..60,
            ),
            mutations in proptest::collection::vec(
                (any::<usize>(), 1u8..=255), 0..3),
        ) {
            let flows = tuples_to_flows(raw);
            let refs: Vec<&FlowTuple> = flows.iter().collect();
            let mut payload = encode_block(&refs);
            let pristine = mutations.is_empty() || payload.is_empty();
            for (idx, x) in mutations {
                if !payload.is_empty() {
                    let i = idx % payload.len();
                    payload[i] ^= x;
                }
            }
            let mut scratch = BlockScratch::default();
            let mut rh = Fnv1a::new();
            let record = decode_block_into(&payload, flows.len(), &mut scratch, &mut rh);
            let mut block = ColumnBlock::default();
            let mut ch = Fnv1a::new();
            let columnar = decode_block_columnar_into(&payload, flows.len(), &mut block, &mut ch);
            match (record, columnar) {
                (Ok(()), Ok(())) => {
                    prop_assert_eq!(&scratch.flows, block.flows());
                    // The interleaved hashes covered the whole payload.
                    prop_assert_eq!(rh.finish(), fnv1a(&payload));
                    prop_assert_eq!(ch.finish(), fnv1a(&payload));
                    // The exposed src column is the decoded addresses.
                    for (f, &ip) in block.flows().iter().zip(block.src_ip()) {
                        prop_assert_eq!(u32::from(f.src_ip), ip);
                    }
                    if pristine {
                        prop_assert_eq!(block.flows(), flows.as_slice());
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
                (a, b) => prop_assert!(
                    false, "decoder disagreement: record {:?}, columnar {:?}", a, b),
            }
        }

        /// Satellite: the varint scalar-tail window. Every block payload
        /// ends exactly at the buffer boundary, so its final columns
        /// decode through the < 8-byte scalar fallback; both decoders
        /// must agree with the encoder at the exact boundary and must
        /// reject bytes past it with the same error.
        #[test]
        fn prop_varint_tail_and_block_boundary(
            raw in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), 0usize..3, any::<u8>(), any::<u8>(), any::<u16>(), 1u32..1_000_000),
                1..8,
            ),
            pad in 1usize..8,
        ) {
            let flows = tuples_to_flows(raw);
            let refs: Vec<&FlowTuple> = flows.iter().collect();
            let payload = encode_block(&refs);
            // Exact boundary: both decoders consume the whole payload.
            let mut scratch = BlockScratch::default();
            decode_block_into(&payload, flows.len(), &mut scratch, &mut Fnv1a::new()).unwrap();
            prop_assert_eq!(&scratch.flows, &flows);
            let mut block = ColumnBlock::default();
            decode_block_columnar_into(&payload, flows.len(), &mut block, &mut Fnv1a::new())
                .unwrap();
            prop_assert_eq!(block.flows(), flows.as_slice());
            // Bytes past the boundary: identical trailing-bytes errors.
            let mut padded = payload.clone();
            padded.extend(vec![0u8; pad]);
            let a = decode_block_into(&padded, flows.len(), &mut scratch, &mut Fnv1a::new())
                .unwrap_err();
            let b =
                decode_block_columnar_into(&padded, flows.len(), &mut block, &mut Fnv1a::new())
                    .unwrap_err();
            prop_assert_eq!(format!("{a}"), format!("{b}"));
            let msg = format!("{a}");
            prop_assert!(msg.contains("trailing bytes"), "got: {}", msg);
        }

        /// The whole-column un-delta passes match a one-at-a-time
        /// scalar reference on arbitrary lane-unaligned lengths.
        #[test]
        fn prop_prefix_sum_and_unzigzag_match_scalar(
            vals in proptest::collection::vec(any::<u32>(), 0..70),
        ) {
            let mut summed = vals.clone();
            prefix_sum_wrapping(&mut summed);
            let mut acc = 0u32;
            for (i, &d) in vals.iter().enumerate() {
                acc = acc.wrapping_add(d);
                prop_assert_eq!(summed[i], acc, "prefix index {}", i);
            }
            let mut unzz = vals.clone();
            unzigzag_prefix_sum(&mut unzz);
            let mut acc = 0u32;
            for (i, &v) in vals.iter().enumerate() {
                acc = acc.wrapping_add(unzigzag(v) as u32);
                prop_assert_eq!(unzz[i], acc, "zigzag index {}", i);
            }
            let bad = first_where(&vals, |v| v > 1_000_000);
            prop_assert_eq!(bad, vals.iter().position(|&v| v > 1_000_000));
        }
    }

    /// Build a raw block payload from per-column deltas: the src column
    /// is plain wrapping deltas, the other eight are zigzag deltas in
    /// encode order (dst, src_port, dst_port, proto, ttl, flags,
    /// ip_len, packets).
    fn payload_from_deltas(src: &[u32], zz: [&[i32]; 8]) -> Vec<u8> {
        let mut out = Vec::new();
        put_rle_column(&mut out, src);
        for col in zz {
            let enc: Vec<u32> = col.iter().map(|&d| zigzag(d)).collect();
            put_rle_column(&mut out, &enc);
        }
        out
    }

    #[test]
    fn columnar_error_order_matches_record_decoder() {
        // Two-record blocks with corruption planted in specific columns
        // and records: the columnar decoder must report exactly the
        // error the record-at-a-time decoder hits first.
        let good = (
            [0u32, 1],   // src deltas
            [0i32, 0],   // dst
            [80i32, 0],  // src_port
            [443i32, 0], // dst_port
            [6i32, 0],   // proto (TCP)
            [64i32, 0],  // ttl
            [2i32, 0],   // flags
            [40i32, 0],  // ip_len
            [1i32, 0],   // packets
        );
        // (name, proto deltas, src_port deltas, ttl deltas, expected error)
        type Case = (&'static str, [i32; 2], [i32; 2], [i32; 2], &'static str);
        let cases: [Case; 4] = [
            // (name, proto, src_port, ttl, expected error)
            // Bad src_port at record 0 beats bad proto at record 1.
            (
                "earlier record wins",
                [6, -10],
                [70_000, 0],
                good.5,
                "src_port delta out of range",
            ),
            // Same record: protocol (rank 0) beats ttl (rank 3).
            (
                "field order wins",
                [2, 0],
                good.2,
                [500, 0],
                "unknown protocol number 2",
            ),
            // Protocol accumulator escaping 0..=255.
            (
                "proto range",
                [-1, 0],
                good.2,
                good.5,
                "protocol delta out of range",
            ),
            // A lone late failure still surfaces.
            (
                "single bad column",
                good.4,
                good.2,
                [64, 300],
                "ttl delta out of range",
            ),
        ];
        for (name, proto, src_port, ttl, want) in cases {
            let payload = payload_from_deltas(
                &good.0,
                [
                    &good.1, &src_port, &good.3, &proto, &ttl, &good.6, &good.7, &good.8,
                ],
            );
            let mut scratch = BlockScratch::default();
            let a = decode_block_into(&payload, 2, &mut scratch, &mut Fnv1a::new()).unwrap_err();
            let mut block = ColumnBlock::default();
            let b =
                decode_block_columnar_into(&payload, 2, &mut block, &mut Fnv1a::new()).unwrap_err();
            assert_eq!(format!("{a}"), format!("{b}"), "{name}");
            assert!(format!("{a}").contains(want), "{name}: got {a}");
        }
    }
}
