//! Hourly flowtuple file store.
//!
//! Mirrors the UCSD telescope data layout the paper consumed: one file per
//! hour, grouped in per-day directories. Files carry a magic header, the
//! hour they cover, a record count, an optional sorted+delta-encoded
//! payload (source addresses are ascending, stored as varint deltas — the
//! same trick corsaro uses to shrink flowtuple files), and an FNV-1a
//! checksum so corruption is detected rather than silently analyzed.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), iotscope_net::NetError> {
//! use iotscope_net::store::{FlowStore, StoreOptions};
//! use iotscope_net::time::UnixHour;
//! use iotscope_net::flowtuple::FlowTuple;
//! use iotscope_net::protocol::TcpFlags;
//! use std::net::Ipv4Addr;
//!
//! let store = FlowStore::create("/tmp/darknet", StoreOptions::default())?;
//! let hour = UnixHour::from_unix_secs(1_491_955_200);
//! let flows = vec![FlowTuple::tcp(
//!     Ipv4Addr::new(203, 0, 113, 1), Ipv4Addr::new(44, 0, 0, 1),
//!     40000, 23, TcpFlags::SYN,
//! )];
//! store.write_hour(hour, &flows)?;
//! let back = store.read_hour(hour)?;
//! assert_eq!(back, flows);
//! # Ok(())
//! # }
//! ```

use crate::flowtuple::{get_varint, put_varint, FlowTuple};
use crate::time::{AnalysisWindow, UnixHour, HOURS_PER_DAY};
use crate::NetError;
use bytes::{Buf, BufMut};
use iotscope_obs::{Counter, Histogram, Registry, BYTE_SIZE_BOUNDS};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Legacy format: the checksum covers only the payload, so header
/// corruption (flags, hour, count) went undetected. Read-only.
const MAGIC_V1: &[u8; 7] = b"IOTFT01";
/// Current format: the checksum covers the header prefix (magic, flags,
/// hour, count) *and* the payload. All new files are written as v2.
const MAGIC_V2: &[u8; 7] = b"IOTFT02";
const FLAG_DELTA: u8 = 0b0000_0001;

/// Header layout: magic (7) + flags (1) + hour (8) + count (4) +
/// checksum (8). The checksum field itself is never hashed; in v2 the
/// hash covers everything before it plus the payload after it.
const HEADER: usize = 7 + 1 + 8 + 4 + 8;
/// Bytes of header covered by the v2 checksum (everything before it).
const HEADER_HASHED: usize = HEADER - 8;

/// The smallest possible encoded record: a delta record is a 1-byte
/// source varint + 13 fixed bytes + a 1-byte packets varint (plain
/// records are larger). Used to bound the record-count preallocation so
/// a forged count can never allocate more than the file could hold.
const MIN_RECORD_BYTES: usize = 15;

/// Options controlling on-disk encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Sort records by source address and delta-encode the addresses.
    /// Smaller files; record order inside an hour is not preserved.
    pub delta_encode: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { delta_encode: true }
    }
}

/// The store-layer metric handles, all under the `store.` prefix.
///
/// Every [`FlowStore`] carries one of these; by default the counters are
/// detached (they count, but no registry ever snapshots them), and
/// [`FlowStore::instrumented`] rebinds them to a shared
/// [`iotscope_obs::Registry`]. All `store.` metrics are
/// [stable](iotscope_obs::Stability::Stable): a successful run reads and
/// writes the same hours whichever thread performs the I/O.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// On-disk bytes read (`store.bytes_read`).
    pub bytes_read: Counter,
    /// Hour files read (`store.hours_read`).
    pub hours_read: Counter,
    /// Flowtuple records decoded (`store.records_decoded`).
    pub records_decoded: Counter,
    /// Decodes rejected by the FNV checksum (`store.checksum_failures`).
    pub checksum_failures: Counter,
    /// On-disk bytes written (`store.bytes_written`).
    pub bytes_written: Counter,
    /// Hour files written (`store.hours_written`).
    pub hours_written: Counter,
    /// Flowtuple records written (`store.records_written`).
    pub records_written: Counter,
    /// Distribution of hour-file sizes in bytes (`store.hour_bytes`).
    pub hour_bytes: Histogram,
}

impl StoreMetrics {
    /// Handles not attached to any registry (counts are discarded).
    pub fn detached() -> Self {
        StoreMetrics {
            bytes_read: Counter::detached(),
            hours_read: Counter::detached(),
            records_decoded: Counter::detached(),
            checksum_failures: Counter::detached(),
            bytes_written: Counter::detached(),
            hours_written: Counter::detached(),
            records_written: Counter::detached(),
            hour_bytes: Histogram::detached(&BYTE_SIZE_BOUNDS),
        }
    }

    /// Handles registered in (or fetched from) `registry`.
    pub fn register(registry: &Registry) -> Self {
        StoreMetrics {
            bytes_read: registry.counter("store.bytes_read"),
            hours_read: registry.counter("store.hours_read"),
            records_decoded: registry.counter("store.records_decoded"),
            checksum_failures: registry.counter("store.checksum_failures"),
            bytes_written: registry.counter("store.bytes_written"),
            hours_written: registry.counter("store.hours_written"),
            records_written: registry.counter("store.records_written"),
            hour_bytes: registry.histogram("store.hour_bytes", &BYTE_SIZE_BOUNDS),
        }
    }
}

/// A directory-backed store of hourly flowtuple files.
#[derive(Debug, Clone)]
pub struct FlowStore {
    root: PathBuf,
    options: StoreOptions,
    metrics: StoreMetrics,
}

impl FlowStore {
    /// Open an existing store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `root` does not exist or is not a directory.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, NetError> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("store root {} is not a directory", root.display()),
            )));
        }
        Ok(FlowStore {
            root,
            options: StoreOptions::default(),
            metrics: StoreMetrics::detached(),
        })
    }

    /// Create (or open) a store rooted at `root`, creating directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create<P: AsRef<Path>>(root: P, options: StoreOptions) -> Result<Self, NetError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FlowStore {
            root,
            options,
            metrics: StoreMetrics::detached(),
        })
    }

    /// Rebind this store's metric handles to `registry`, so reads and
    /// writes show up in its snapshots (under the `store.` prefix).
    /// Consuming builder style: `FlowStore::open(dir)?.instrumented(&r)`.
    #[must_use]
    pub fn instrumented(mut self, registry: &Registry) -> Self {
        self.metrics = StoreMetrics::register(registry);
        self
    }

    /// The store's current metric handles.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the file covering `hour`.
    pub fn hour_path(&self, hour: UnixHour) -> PathBuf {
        let day = hour.get() / u64::from(HOURS_PER_DAY);
        self.root
            .join(format!("day-{day}"))
            .join(format!("hour-{}.ft", hour.get()))
    }

    /// Serialize `flows` into the file for `hour`, replacing any previous
    /// contents.
    ///
    /// The bytes go to a `.ft.tmp` sibling first and are renamed into
    /// place only once fully written, so an interrupted write never
    /// leaves a truncated file where [`FlowStore::read_hour`] (or
    /// [`FlowStore::has_hour`]) would find it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure the temporary file is removed.
    pub fn write_hour(&self, hour: UnixHour, flows: &[FlowTuple]) -> Result<(), NetError> {
        let path = self.hour_path(hour);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("ft.tmp");
        let bytes = encode_hour(hour, flows, self.options);
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(NetError::Io(e));
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(NetError::Io(e));
        }
        self.metrics.bytes_written.add(bytes.len() as u64);
        self.metrics.records_written.add(flows.len() as u64);
        self.metrics.hours_written.inc();
        self.metrics.hour_bytes.observe(bytes.len() as u64);
        Ok(())
    }

    /// Read back the flows for `hour`.
    ///
    /// Delta-encoded files return records sorted by source address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file is missing and
    /// [`NetError::Codec`] if it is corrupt, truncated, or covers a
    /// different hour than its name claims.
    pub fn read_hour(&self, hour: UnixHour) -> Result<Vec<FlowTuple>, NetError> {
        let bytes = self.read_hour_bytes(hour)?;
        self.decode_hour_for(hour, &bytes)
    }

    /// Read the raw on-disk bytes for `hour` without decoding them.
    ///
    /// Lets callers separate I/O from decoding — the parallel pipeline
    /// uses this to time (and overlap) the two stages independently.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file is missing or unreadable.
    pub fn read_hour_bytes(&self, hour: UnixHour) -> Result<Vec<u8>, NetError> {
        let path = self.hour_path(hour);
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        self.metrics.bytes_read.add(bytes.len() as u64);
        self.metrics.hours_read.inc();
        Ok(bytes)
    }

    /// Decode bytes previously read for `hour` (the counterpart of
    /// [`FlowStore::read_hour_bytes`]), enforcing that the file really
    /// covers `hour`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] if the bytes are corrupt, truncated,
    /// or cover a different hour than the file name claims.
    pub fn decode_hour_for(
        &self,
        hour: UnixHour,
        bytes: &[u8],
    ) -> Result<Vec<FlowTuple>, NetError> {
        let (file_hour, flows) = match decode_hour(bytes) {
            Ok(ok) => ok,
            Err(e) => {
                if e.is_checksum_mismatch() {
                    self.metrics.checksum_failures.inc();
                }
                return Err(e);
            }
        };
        if file_hour != hour {
            return Err(NetError::Codec(format!(
                "file {} claims hour {file_hour}, expected {hour}",
                self.hour_path(hour).display()
            )));
        }
        self.metrics.records_decoded.add(flows.len() as u64);
        Ok(flows)
    }

    /// Whether a file exists for `hour`.
    pub fn has_hour(&self, hour: UnixHour) -> bool {
        self.hour_path(hour).is_file()
    }

    /// The hours of `window` that have files, in order.
    pub fn hours_present(&self, window: &AnalysisWindow) -> Vec<UnixHour> {
        window.iter_hours().filter(|h| self.has_hour(*h)).collect()
    }

    /// The hours of `window` with **no** file — the paper's data-quality
    /// check that led to dropping April 18.
    pub fn hours_missing(&self, window: &AnalysisWindow) -> Vec<UnixHour> {
        window.iter_hours().filter(|h| !self.has_hour(*h)).collect()
    }
}

/// Encode one hour's flows into the current (v2) on-disk byte format,
/// whose checksum covers the header as well as the payload.
pub fn encode_hour(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let payload = encode_payload(flows, options);
    let mut out = Vec::with_capacity(payload.len() + HEADER);
    out.extend_from_slice(MAGIC_V2);
    out.put_u8(if options.delta_encode { FLAG_DELTA } else { 0 });
    out.put_u64(hour.get());
    out.put_u32(flows.len() as u32);
    let mut hasher = Fnv1a::new();
    hasher.update(&out[..HEADER_HASHED]);
    hasher.update(&payload);
    out.put_u64(hasher.finish());
    out.extend_from_slice(&payload);
    out
}

/// Encode one hour's flows in the legacy v1 format (payload-only
/// checksum). Kept so compatibility tests can fabricate old files;
/// nothing in the workspace writes v1 anymore.
pub fn encode_hour_v1(hour: UnixHour, flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let payload = encode_payload(flows, options);
    let mut out = Vec::with_capacity(payload.len() + HEADER);
    out.extend_from_slice(MAGIC_V1);
    out.put_u8(if options.delta_encode { FLAG_DELTA } else { 0 });
    out.put_u64(hour.get());
    out.put_u32(flows.len() as u32);
    out.put_u64(fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

fn encode_payload(flows: &[FlowTuple], options: StoreOptions) -> Vec<u8> {
    let mut payload = Vec::with_capacity(flows.len() * 16);
    if options.delta_encode {
        let mut sorted: Vec<&FlowTuple> = flows.iter().collect();
        sorted.sort_by_key(|f| (u32::from(f.src_ip), u32::from(f.dst_ip), f.dst_port));
        let mut prev: u32 = 0;
        for f in sorted {
            let ip = u32::from(f.src_ip);
            put_varint(&mut payload, ip.wrapping_sub(prev));
            prev = ip;
            encode_rest(&mut payload, f);
        }
    } else {
        for f in flows {
            f.encode_into(&mut payload);
        }
    }
    payload
}

/// Decode an on-disk hour file back into `(hour, flows)`.
///
/// # Errors
///
/// Returns [`NetError::Codec`] for bad magic, checksum mismatch,
/// truncation, or trailing garbage.
pub fn decode_hour(bytes: &[u8]) -> Result<(UnixHour, Vec<FlowTuple>), NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Codec("file shorter than header".to_owned()));
    }
    let v2 = match &bytes[..7] {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => {
            return Err(NetError::Codec(
                "bad magic (not a flowtuple file)".to_owned(),
            ))
        }
    };
    let mut hdr = &bytes[7..HEADER];
    let flags = hdr.get_u8();
    let hour = UnixHour::new(hdr.get_u64());
    let count = hdr.get_u32() as usize;
    let checksum = hdr.get_u64();
    let payload = &bytes[HEADER..];
    let computed = if v2 {
        let mut hasher = Fnv1a::new();
        hasher.update(&bytes[..HEADER_HASHED]);
        hasher.update(payload);
        hasher.finish()
    } else {
        // v1 files only covered the payload; header corruption there is
        // caught by the plausibility checks below as far as possible.
        fnv1a(payload)
    };
    if computed != checksum {
        return Err(NetError::Codec(
            "checksum mismatch (corrupt file)".to_owned(),
        ));
    }
    // A forged count must never drive the preallocation past what the
    // payload could actually hold (records are >= MIN_RECORD_BYTES).
    if count > payload.len() / MIN_RECORD_BYTES {
        return Err(NetError::Codec(format!(
            "implausible record count {count} for {}-byte payload",
            payload.len()
        )));
    }
    let delta = flags & FLAG_DELTA != 0;
    let mut flows = Vec::with_capacity(count);
    let mut buf = payload;
    let mut prev: u32 = 0;
    for _ in 0..count {
        if delta {
            let d = get_varint(&mut buf)?;
            prev = prev.wrapping_add(d);
            let mut f = decode_rest(&mut buf)?;
            f.src_ip = std::net::Ipv4Addr::from(prev);
            flows.push(f);
        } else {
            flows.push(FlowTuple::decode_from(&mut buf)?);
        }
    }
    if buf.has_remaining() {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after {count} records",
            buf.remaining()
        )));
    }
    Ok((hour, flows))
}

/// Encode every field of `f` except `src_ip` (already delta-encoded).
fn encode_rest<B: BufMut>(buf: &mut B, f: &FlowTuple) {
    buf.put_u32(u32::from(f.dst_ip));
    buf.put_u16(f.src_port);
    buf.put_u16(f.dst_port);
    buf.put_u8(f.protocol.number());
    buf.put_u8(f.ttl);
    buf.put_u8(f.tcp_flags.bits());
    buf.put_u16(f.ip_len);
    put_varint(buf, f.packets);
}

fn decode_rest<B: Buf>(buf: &mut B) -> Result<FlowTuple, NetError> {
    use crate::protocol::{TcpFlags, TransportProtocol};
    const FIXED: usize = 4 + 2 + 2 + 1 + 1 + 1 + 2;
    if buf.remaining() < FIXED {
        return Err(NetError::Codec("truncated delta record".to_owned()));
    }
    let dst_ip = std::net::Ipv4Addr::from(buf.get_u32());
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let proto_num = buf.get_u8();
    let protocol = TransportProtocol::from_number(proto_num)
        .ok_or_else(|| NetError::Codec(format!("unknown protocol number {proto_num}")))?;
    let ttl = buf.get_u8();
    let tcp_flags = TcpFlags::from_bits(buf.get_u8());
    let ip_len = buf.get_u16();
    let packets = get_varint(buf)?;
    Ok(FlowTuple {
        src_ip: std::net::Ipv4Addr::UNSPECIFIED,
        dst_ip,
        src_port,
        dst_port,
        protocol,
        ttl,
        tcp_flags,
        ip_len,
        packets,
    })
}

/// Streaming 64-bit FNV-1a, so the checksum can cover discontiguous
/// regions (header prefix + payload) without concatenating them.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// 64-bit FNV-1a over `data`.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.update(data);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{IcmpType, TcpFlags};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn flows() -> Vec<FlowTuple> {
        vec![
            FlowTuple::tcp(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(44, 1, 1, 1),
                40000,
                23,
                TcpFlags::SYN,
            ),
            FlowTuple::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(44, 5, 5, 5),
                53,
                37547,
            )
            .with_packets(7),
            FlowTuple::icmp(
                Ipv4Addr::new(5, 5, 5, 5),
                Ipv4Addr::new(44, 7, 7, 7),
                IcmpType::EchoRequest,
            ),
        ]
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotscope-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sorted(mut v: Vec<FlowTuple>) -> Vec<FlowTuple> {
        v.sort_by_key(|f| (u32::from(f.src_ip), u32::from(f.dst_ip), f.dst_port));
        v
    }

    #[test]
    fn roundtrip_delta_and_plain() {
        for delta in [true, false] {
            let opts = StoreOptions {
                delta_encode: delta,
            };
            let hour = UnixHour::new(414_432);
            let bytes = encode_hour(hour, &flows(), opts);
            let (h, back) = decode_hour(&bytes).unwrap();
            assert_eq!(h, hour);
            assert_eq!(sorted(back), sorted(flows()), "delta={delta}");
        }
    }

    #[test]
    fn plain_mode_preserves_order() {
        let opts = StoreOptions {
            delta_encode: false,
        };
        let bytes = encode_hour(UnixHour::new(1), &flows(), opts);
        let (_, back) = decode_hour(&bytes).unwrap();
        assert_eq!(back, flows());
    }

    #[test]
    fn delta_mode_is_smaller_for_clustered_sources() {
        // Sources in one /24 delta-encode to 1-2 byte deltas.
        let many: Vec<FlowTuple> = (0..500u32)
            .map(|i| {
                FlowTuple::tcp(
                    Ipv4Addr::from(0xC000_0200 + i % 256),
                    Ipv4Addr::new(44, 0, 0, 1),
                    40000,
                    23,
                    TcpFlags::SYN,
                )
            })
            .collect();
        let d = encode_hour(UnixHour::new(1), &many, StoreOptions { delta_encode: true });
        let p = encode_hour(
            UnixHour::new(1),
            &many,
            StoreOptions {
                delta_encode: false,
            },
        );
        assert!(d.len() < p.len(), "delta {} vs plain {}", d.len(), p.len());
    }

    #[test]
    fn empty_hour_roundtrips() {
        let bytes = encode_hour(UnixHour::new(7), &[], StoreOptions::default());
        let (h, back) = decode_hour(&bytes).unwrap();
        assert_eq!(h, UnixHour::new(7));
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        bytes[0] = b'X';
        assert!(matches!(decode_hour(&bytes), Err(NetError::Codec(_))));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let err = decode_hour(&bytes).unwrap_err();
        assert!(format!("{err}").contains("checksum"));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        for cut in [0, 5, 20, bytes.len() - 1] {
            assert!(decode_hour(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode_hour(
            UnixHour::new(1),
            &flows(),
            StoreOptions {
                delta_encode: false,
            },
        );
        // Appending bytes breaks the checksum; to test the trailing-byte
        // check specifically, rebuild with a forged checksum.
        let extra = [0u8; 3];
        bytes.extend_from_slice(&extra);
        assert!(decode_hour(&bytes).is_err());
    }

    #[test]
    fn store_write_read_cycle() {
        let dir = tmpdir("cycle");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let hour = UnixHour::from_unix_secs(AnalysisWindow::PAPER_START_SECS);
        store.write_hour(hour, &flows()).unwrap();
        assert!(store.has_hour(hour));
        assert!(!store.has_hour(hour.next()));
        let back = store.read_hour(hour).unwrap();
        assert_eq!(sorted(back), sorted(flows()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_missing_hour_is_io_error() {
        let dir = tmpdir("missing");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let err = store.read_hour(UnixHour::new(42)).unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_detects_renamed_hour_file() {
        let dir = tmpdir("renamed");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let h1 = UnixHour::new(100);
        let h2 = UnixHour::new(101);
        store.write_hour(h1, &flows()).unwrap();
        fs::create_dir_all(store.hour_path(h2).parent().unwrap()).unwrap();
        fs::rename(store.hour_path(h1), store.hour_path(h2)).unwrap();
        let err = store.read_hour(h2).unwrap_err();
        assert!(format!("{err}").contains("claims hour"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hours_present_and_missing_partition_window() {
        let dir = tmpdir("present");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let window = AnalysisWindow::short(5);
        let hours: Vec<UnixHour> = window.iter_hours().collect();
        store.write_hour(hours[0], &flows()).unwrap();
        store.write_hour(hours[3], &[]).unwrap();
        let present = store.hours_present(&window);
        let missing = store.hours_missing(&window);
        assert_eq!(present, vec![hours[0], hours[3]]);
        assert_eq!(missing.len(), 3);
        assert_eq!(present.len() + missing.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_root() {
        assert!(FlowStore::open("/definitely/not/here-iotscope").is_err());
    }

    #[test]
    fn files_group_by_day_directory() {
        let store = FlowStore {
            root: PathBuf::from("/data"),
            options: StoreOptions::default(),
            metrics: StoreMetrics::detached(),
        };
        let p = store.hour_path(UnixHour::new(49));
        assert_eq!(p, PathBuf::from("/data/day-2/hour-49.ft"));
    }

    #[test]
    fn v1_files_still_decode() {
        for delta in [true, false] {
            let opts = StoreOptions {
                delta_encode: delta,
            };
            let hour = UnixHour::new(414_432);
            let bytes = encode_hour_v1(hour, &flows(), opts);
            assert_eq!(&bytes[..7], MAGIC_V1);
            let (h, back) = decode_hour(&bytes).unwrap();
            assert_eq!(h, hour);
            assert_eq!(sorted(back), sorted(flows()), "delta={delta}");
        }
    }

    #[test]
    fn new_files_are_v2() {
        let bytes = encode_hour(UnixHour::new(1), &flows(), StoreOptions::default());
        assert_eq!(&bytes[..7], MAGIC_V2);
    }

    #[test]
    fn v2_header_corruption_detected() {
        // Any header byte flip — flags, hour, or count — must fail the
        // checksum (v1's payload-only hash missed all of these).
        let clean = encode_hour(UnixHour::new(414_432), &flows(), StoreOptions::default());
        for idx in 7..HEADER_HASHED {
            let mut bytes = clean.clone();
            bytes[idx] ^= 0x01;
            let err = decode_hour(&bytes).unwrap_err();
            assert!(
                format!("{err}").contains("checksum"),
                "byte {idx} flip gave: {err}"
            );
        }
    }

    #[test]
    fn forged_count_rejected_without_huge_alloc() {
        // Fabricate a v1 file whose count claims ~4 billion records but
        // whose payload is tiny. Before the plausibility clamp this
        // preallocated count * sizeof(FlowTuple) bytes up front.
        let mut bytes = encode_hour_v1(UnixHour::new(1), &flows(), StoreOptions::default());
        let count_off = 7 + 1 + 8;
        bytes[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = decode_hour(&bytes).unwrap_err();
        assert!(
            format!("{err}").contains("implausible record count"),
            "got: {err}"
        );
    }

    #[test]
    fn count_plausibility_bound_is_tight() {
        // count == payload/MIN_RECORD_BYTES must pass (minimal delta
        // records really are MIN_RECORD_BYTES long), one more must not.
        let tiny: Vec<FlowTuple> = (0..4u32)
            .map(|i| {
                FlowTuple::tcp(
                    Ipv4Addr::from(i + 1),
                    Ipv4Addr::from(0u32),
                    0,
                    0,
                    TcpFlags::from_bits(0),
                )
            })
            .map(|f| FlowTuple {
                ip_len: 0,
                ttl: 0,
                ..f
            })
            .collect();
        let bytes = encode_hour(UnixHour::new(1), &tiny, StoreOptions { delta_encode: true });
        let payload_len = bytes.len() - HEADER;
        assert_eq!(
            payload_len,
            tiny.len() * MIN_RECORD_BYTES,
            "minimal records should hit the MIN_RECORD_BYTES floor"
        );
        assert!(decode_hour(&bytes).is_ok());
    }

    #[test]
    fn write_goes_through_tmp_and_renames() {
        let dir = tmpdir("atomic");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let hour = UnixHour::new(100);
        store.write_hour(hour, &flows()).unwrap();
        let tmp = store.hour_path(hour).with_extension("ft.tmp");
        assert!(!tmp.exists(), "temp file must not survive a clean write");
        assert!(store.has_hour(hour));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_file_is_not_an_hour() {
        // An interrupted writer dies between create and rename; the
        // half-written temp file must be invisible to readers.
        let dir = tmpdir("tmpfile");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let window = AnalysisWindow::short(3);
        let hours: Vec<UnixHour> = window.iter_hours().collect();
        store.write_hour(hours[0], &flows()).unwrap();
        let tmp = store.hour_path(hours[1]).with_extension("ft.tmp");
        fs::create_dir_all(tmp.parent().unwrap()).unwrap();
        let full = encode_hour(hours[1], &flows(), StoreOptions::default());
        fs::write(&tmp, &full[..full.len() / 2]).unwrap();
        assert!(!store.has_hour(hours[1]));
        assert_eq!(store.hours_present(&window), vec![hours[0]]);
        assert!(matches!(store.read_hour(hours[1]), Err(NetError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn instrumented_store_counts_reads_writes_and_corruption() {
        let registry = iotscope_obs::Registry::new();
        let dir = tmpdir("metrics");
        let store = FlowStore::create(&dir, StoreOptions::default())
            .unwrap()
            .instrumented(&registry);
        let hours = [UnixHour::new(40), UnixHour::new(41)];
        for h in hours {
            store.write_hour(h, &flows()).unwrap();
        }
        for h in hours {
            store.read_hour(h).unwrap();
        }
        let on_disk: u64 = hours
            .iter()
            .map(|h| std::fs::metadata(store.hour_path(*h)).unwrap().len())
            .sum();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.hours_written"), Some(2));
        assert_eq!(snap.counter("store.hours_read"), Some(2));
        assert_eq!(snap.counter("store.bytes_written"), Some(on_disk));
        assert_eq!(snap.counter("store.bytes_read"), Some(on_disk));
        assert_eq!(
            snap.counter("store.records_written"),
            Some(2 * flows().len() as u64)
        );
        assert_eq!(
            snap.counter("store.records_decoded"),
            Some(2 * flows().len() as u64)
        );
        assert_eq!(snap.counter("store.checksum_failures"), Some(0));

        // Corrupt one file: the failed decode is counted, the partial
        // read still adds its bytes.
        let victim = store.hour_path(hours[0]);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        assert!(store.read_hour(hours[0]).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.checksum_failures"), Some(1));
        assert_eq!(snap.counter("store.hours_read"), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detached_store_still_works_without_registry() {
        let dir = tmpdir("detached");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        store.write_hour(UnixHour::new(7), &flows()).unwrap();
        assert_eq!(store.metrics().hours_written.get(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_encode_decode_roundtrip(
            raw in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), 0usize..3, any::<u8>(), any::<u8>(), any::<u16>(), 1u32..1_000_000),
                0..50,
            ),
            delta: bool,
            hour: u64,
        ) {
            use crate::protocol::TransportProtocol;
            let flows: Vec<FlowTuple> = raw
                .into_iter()
                .map(|(s, d, sp, dp, pi, ttl, fl, len, pk)| FlowTuple {
                    src_ip: Ipv4Addr::from(s),
                    dst_ip: Ipv4Addr::from(d),
                    src_port: sp,
                    dst_port: dp,
                    protocol: TransportProtocol::ALL[pi],
                    ttl,
                    tcp_flags: TcpFlags::from_bits(fl),
                    ip_len: len,
                    packets: pk,
                })
                .collect();
            let bytes = encode_hour(UnixHour::new(hour), &flows, StoreOptions { delta_encode: delta });
            let (h, back) = decode_hour(&bytes).unwrap();
            prop_assert_eq!(h, UnixHour::new(hour));
            prop_assert_eq!(sorted(back), sorted(flows));
        }
    }
}
