//! Read-only memory-mapped files for the segmented store.
//!
//! Segments pack hundreds of hour payloads into one file; reading them
//! through a map means the block decoder borrows `&[u8]` straight out
//! of the page cache instead of copying every hour into a fresh
//! `Vec<u8>` first — the year-scale streaming path stays flat in RSS
//! because only the pages actually touched are ever resident, and the
//! kernel can reclaim them behind the cursor.
//!
//! Zero-dependency discipline, like the rest of the workspace: the map
//! is a raw `mmap(2)`/`munmap(2)` FFI pair on 64-bit unix (std already
//! links libc there), and everywhere else [`Mmap::open`] silently falls
//! back to reading the file into an owned buffer, so callers never
//! branch on platform.
//!
//! # Safety argument
//!
//! This is the only `unsafe` code in the workspace, so the contract is
//! spelled out once, here (and summarized in DESIGN.md §3g):
//!
//! * The mapping is `PROT_READ` + `MAP_PRIVATE` over a file we opened
//!   read-only: nothing in this process can write through it, so the
//!   returned `&[u8]` is never aliased mutably.
//! * Segment files are immutable once written — the writer goes through
//!   a `.tmp` sibling and an atomic rename, and nothing in the
//!   workspace ever modifies a segment in place — so the bytes behind
//!   the map do not change for the life of the mapping.
//! * The pointer/length pair handed to [`std::slice::from_raw_parts`]
//!   comes from a successful `mmap` call of exactly that length and is
//!   unmapped only in `Drop`, after every borrow is gone (the borrows
//!   are tied to `&self`).
//! * An *external* writer truncating the file under the map could still
//!   fault the process (`SIGBUS`), exactly as it always could corrupt a
//!   plain `read`. That is outside the trust boundary; within it, the
//!   manifest, segment-table, and per-block checksums ensure tampered
//!   bytes are rejected at decode time instead of being analyzed.

use crate::NetError;
use std::fs;
use std::io::Read as _;
use std::path::Path;

/// A read-only view of an entire file: memory-mapped where supported,
/// an owned in-memory copy otherwise. Either way [`Mmap::bytes`] hands
/// out the full contents as one slice.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::Map),
    Owned(Vec<u8>),
}

impl Mmap {
    /// Map `path` read-only. Zero-length files, non-unix targets, and
    /// filesystems that refuse `mmap` fall back to an owned read; use
    /// [`Mmap::is_mapped`] to observe which happened.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file cannot be opened or read.
    pub fn open(path: &Path) -> Result<Mmap, NetError> {
        let mut file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| NetError::Codec(format!("{} too large to map", path.display())))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if len > 0 {
            if let Ok(map) = sys::Map::new(&file, len) {
                return Ok(Mmap {
                    inner: Inner::Mapped(map),
                });
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(Mmap {
            inner: Inner::Owned(bytes),
        })
    }

    /// The file's full contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped(map) => map.as_slice(),
            Inner::Owned(bytes) => bytes,
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Whether this view is an actual memory map (false on the owned
    /// fallback). Only observability — the slice behaves identically.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

/// The raw `mmap(2)` binding. Kept to the two calls the reader needs;
/// constants are the values Linux and the BSDs agree on for this flag
/// subset.
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `mmap` region: unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the region is PROT_READ and never written through this
    // process; sharing the pointer across threads only ever produces
    // shared `&[u8]` borrows.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            debug_assert!(len > 0, "zero-length maps are the caller's fallback");
            // SAFETY: fd is a live descriptor borrowed for the call,
            // len is the file's actual size, and the null addr lets the
            // kernel place the mapping. MAP_FAILED is (void*)-1.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len are exactly what the successful mmap
            // returned; the region stays mapped until Drop, and the
            // returned borrow cannot outlive `&self` (see module docs
            // for the immutability argument).
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: inverse of the successful mmap in `new`; after
            // this the struct is gone, so no slice can dangle.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn tmpfile(name: &str, contents: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("iotscope-mmap-{name}-{}", std::process::id()));
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents_exactly() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmpfile("contents", &payload);
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmpfile("empty", b"");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), b"");
        assert!(!map.is_mapped(), "zero-length files use the owned path");
        let _ = fs::remove_file(&path);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn non_empty_files_really_map_on_unix() {
        let path = tmpfile("mapped", b"hello telescope");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_mapped());
        assert_eq!(&map[..5], b"hello");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("iotscope-mmap-definitely-missing");
        assert!(matches!(Mmap::open(&path), Err(NetError::Io(_))));
    }
}
