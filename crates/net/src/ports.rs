//! Registry of well-known and IoT/ICS-relevant ports and services.
//!
//! The paper groups scanned destination ports into named services, some of
//! which span several ports (e.g. Telnet = 23/2323/23231, HTTP = 80/8080/81).
//! [`ScanService`] models exactly the 14 groups of Table V; [`ServiceRegistry`]
//! additionally names the UDP ports of Table IV and common infrastructure
//! ports so reports can label arbitrary ports.

use crate::protocol::TransportProtocol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The 14 TCP service groups of Table V, ordered as in the paper
/// (by share of scanning packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScanService {
    /// Telnet on 23, 2323 and the Mirai-variant port 23231.
    Telnet,
    /// HTTP on 80, 8080 and 81.
    Http,
    /// SSH on 22.
    Ssh,
    /// "BackroomNet" on 3387.
    BackroomNet,
    /// CPE WAN Management Protocol (TR-069) on 7547.
    Cwmp,
    /// WSDAPI-Secure on 5358.
    WsdapiS,
    /// Microsoft SQL Server on 1433.
    MsSqlServer,
    /// Kerberos on 88.
    Kerberos,
    /// Microsoft Directory Services (SMB) on 445.
    MsDs,
    /// EtherNet/IP I/O on 2222.
    EthernetIpIo,
    /// iRDMI / alternate HTTP on 8000.
    Irdmi,
    /// The unassigned port 21677 observed in the paper.
    Unassigned21677,
    /// Remote Desktop Protocol on 3389.
    Rdp,
    /// FTP on 21.
    Ftp,
}

impl ScanService {
    /// All 14 groups in Table V order.
    pub const ALL: [ScanService; 14] = [
        ScanService::Telnet,
        ScanService::Http,
        ScanService::Ssh,
        ScanService::BackroomNet,
        ScanService::Cwmp,
        ScanService::WsdapiS,
        ScanService::MsSqlServer,
        ScanService::Kerberos,
        ScanService::MsDs,
        ScanService::EthernetIpIo,
        ScanService::Irdmi,
        ScanService::Unassigned21677,
        ScanService::Rdp,
        ScanService::Ftp,
    ];

    /// The TCP destination ports belonging to this group.
    pub fn ports(self) -> &'static [u16] {
        match self {
            ScanService::Telnet => &[23, 2323, 23231],
            ScanService::Http => &[80, 8080, 81],
            ScanService::Ssh => &[22],
            ScanService::BackroomNet => &[3387],
            ScanService::Cwmp => &[7547],
            ScanService::WsdapiS => &[5358],
            ScanService::MsSqlServer => &[1433],
            ScanService::Kerberos => &[88],
            ScanService::MsDs => &[445],
            ScanService::EthernetIpIo => &[2222],
            ScanService::Irdmi => &[8000],
            ScanService::Unassigned21677 => &[21677],
            ScanService::Rdp => &[3389],
            ScanService::Ftp => &[21],
        }
    }

    /// The group's primary (first-listed) port.
    pub fn primary_port(self) -> u16 {
        self.ports()[0]
    }

    /// Classify a TCP destination port into its Table V group, if any.
    pub fn from_port(port: u16) -> Option<ScanService> {
        Self::ALL.into_iter().find(|s| s.ports().contains(&port))
    }

    /// The label used in Table V, e.g. `"Telnet /23/2323/23231"`.
    pub fn table_label(self) -> String {
        let ports: Vec<String> = self.ports().iter().map(|p| p.to_string()).collect();
        format!("{} /{}", self, ports.join("/"))
    }
}

impl fmt::Display for ScanService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScanService::Telnet => "Telnet",
            ScanService::Http => "HTTP",
            ScanService::Ssh => "SSH",
            ScanService::BackroomNet => "BackroomNet",
            ScanService::Cwmp => "CWMP",
            ScanService::WsdapiS => "WSDAPI-S",
            ScanService::MsSqlServer => "MSSQLServer",
            ScanService::Kerberos => "Kerberos",
            ScanService::MsDs => "MS DS",
            ScanService::EthernetIpIo => "EthernetIP IO",
            ScanService::Irdmi => "iRDMI",
            ScanService::Unassigned21677 => "Unassigned",
            ScanService::Rdp => "RDP",
            ScanService::Ftp => "FTP",
        };
        f.write_str(s)
    }
}

/// Well-known UDP ports of Table IV, with the paper's labels.
///
/// Ports without an official assignment are labeled `"Not Assigned"`; the
/// interesting ones carry vulnerability lore (37547 is the Netcore/Netis
/// router backdoor, 53413 likewise).
pub const UDP_TABLE_PORTS: [(u16, &str); 10] = [
    (37547, "Not Assigned"),
    (137, "NetBIOS"),
    (53413, "Not Assigned"),
    (32124, "Not Assigned"),
    (28183, "Not Assigned"),
    (5353, "mDNS"),
    (4605, "Not Assigned"),
    (53, "DNS"),
    (3544, "Teredo"),
    (1194, "OpenVPN"),
];

/// A lookup table naming `(transport, port)` pairs.
///
/// # Example
///
/// ```
/// use iotscope_net::ports::ServiceRegistry;
/// use iotscope_net::protocol::TransportProtocol;
///
/// let reg = ServiceRegistry::standard();
/// assert_eq!(reg.name(TransportProtocol::Tcp, 23), Some("Telnet"));
/// assert_eq!(reg.name(TransportProtocol::Udp, 5353), Some("mDNS"));
/// assert_eq!(reg.name(TransportProtocol::Udp, 61234), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    names: HashMap<(TransportProtocol, u16), &'static str>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard registry covering every service named in the paper's
    /// tables plus common infrastructure ports.
    pub fn standard() -> Self {
        use TransportProtocol::{Tcp, Udp};
        let mut reg = ServiceRegistry::new();
        for svc in ScanService::ALL {
            for &p in svc.ports() {
                // Leak-free static names: ScanService names are 'static via
                // the match below.
                reg.insert(Tcp, p, scan_service_static_name(svc));
            }
        }
        for (port, name) in UDP_TABLE_PORTS {
            if name != "Not Assigned" {
                reg.insert(Udp, port, name);
            }
        }
        // Extra infrastructure ports used by examples and the simulator.
        reg.insert(Udp, 123, "NTP");
        reg.insert(Udp, 161, "SNMP");
        reg.insert(Udp, 1900, "SSDP");
        reg.insert(Tcp, 25, "SMTP");
        reg.insert(Tcp, 443, "HTTPS");
        reg.insert(Tcp, 502, "Modbus TCP");
        reg.insert(Tcp, 1911, "Niagara Fox");
        reg.insert(Tcp, 4911, "Niagara Fox TLS");
        reg.insert(Tcp, 1883, "MQTT");
        reg.insert(Tcp, 44818, "EtherNet/IP");
        reg.insert(Tcp, 20000, "DNP3");
        reg.insert(Tcp, 47808, "BACnet/IP");
        reg
    }

    /// Register (or replace) a name for `(proto, port)`.
    pub fn insert(&mut self, proto: TransportProtocol, port: u16, name: &'static str) {
        self.names.insert((proto, port), name);
    }

    /// Look up the service name for `(proto, port)`.
    pub fn name(&self, proto: TransportProtocol, port: u16) -> Option<&'static str> {
        self.names.get(&(proto, port)).copied()
    }

    /// The label used in report tables: the service name, or
    /// `"Not Assigned"` for unknown ports.
    pub fn label(&self, proto: TransportProtocol, port: u16) -> &'static str {
        self.name(proto, port).unwrap_or("Not Assigned")
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

fn scan_service_static_name(svc: ScanService) -> &'static str {
    match svc {
        ScanService::Telnet => "Telnet",
        ScanService::Http => "HTTP",
        ScanService::Ssh => "SSH",
        ScanService::BackroomNet => "BackroomNet",
        ScanService::Cwmp => "CWMP",
        ScanService::WsdapiS => "WSDAPI-S",
        ScanService::MsSqlServer => "MSSQLServer",
        ScanService::Kerberos => "Kerberos",
        ScanService::MsDs => "MS DS",
        ScanService::EthernetIpIo => "EthernetIP IO",
        ScanService::Irdmi => "iRDMI",
        ScanService::Unassigned21677 => "Unassigned",
        ScanService::Rdp => "RDP",
        ScanService::Ftp => "FTP",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_service_covers_all_table_v_ports() {
        assert_eq!(ScanService::from_port(23), Some(ScanService::Telnet));
        assert_eq!(ScanService::from_port(2323), Some(ScanService::Telnet));
        assert_eq!(ScanService::from_port(23231), Some(ScanService::Telnet));
        assert_eq!(ScanService::from_port(8080), Some(ScanService::Http));
        assert_eq!(ScanService::from_port(7547), Some(ScanService::Cwmp));
        assert_eq!(ScanService::from_port(3387), Some(ScanService::BackroomNet));
        assert_eq!(
            ScanService::from_port(21677),
            Some(ScanService::Unassigned21677)
        );
        assert_eq!(ScanService::from_port(9999), None);
    }

    #[test]
    fn scan_service_groups_are_disjoint() {
        let mut seen = std::collections::HashSet::new();
        for svc in ScanService::ALL {
            for &p in svc.ports() {
                assert!(seen.insert(p), "port {p} in two groups");
            }
        }
    }

    #[test]
    fn table_v_has_14_groups() {
        assert_eq!(ScanService::ALL.len(), 14);
    }

    #[test]
    fn scan_service_table_label_format() {
        assert_eq!(ScanService::Telnet.table_label(), "Telnet /23/2323/23231");
        assert_eq!(ScanService::Ssh.table_label(), "SSH /22");
    }

    #[test]
    fn primary_port_is_first_listed() {
        assert_eq!(ScanService::Telnet.primary_port(), 23);
        assert_eq!(ScanService::Http.primary_port(), 80);
    }

    #[test]
    fn registry_standard_lookups() {
        let reg = ServiceRegistry::standard();
        assert_eq!(reg.name(TransportProtocol::Tcp, 22), Some("SSH"));
        assert_eq!(reg.name(TransportProtocol::Tcp, 445), Some("MS DS"));
        assert_eq!(reg.name(TransportProtocol::Udp, 137), Some("NetBIOS"));
        assert_eq!(reg.name(TransportProtocol::Udp, 53), Some("DNS"));
        assert_eq!(reg.name(TransportProtocol::Udp, 3544), Some("Teredo"));
        assert_eq!(reg.name(TransportProtocol::Udp, 1194), Some("OpenVPN"));
        // Unassigned UDP table ports deliberately resolve to None.
        assert_eq!(reg.name(TransportProtocol::Udp, 37547), None);
        assert_eq!(reg.label(TransportProtocol::Udp, 37547), "Not Assigned");
        assert!(!reg.is_empty());
    }

    #[test]
    fn registry_protocol_distinguishes_tcp_udp() {
        let reg = ServiceRegistry::standard();
        // 53 is registered only for UDP in the standard table.
        assert_eq!(reg.name(TransportProtocol::Udp, 53), Some("DNS"));
        assert_eq!(reg.name(TransportProtocol::Tcp, 53), None);
    }

    #[test]
    fn registry_insert_overrides() {
        let mut reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        reg.insert(TransportProtocol::Tcp, 9100, "JetDirect");
        assert_eq!(reg.name(TransportProtocol::Tcp, 9100), Some("JetDirect"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn udp_table_has_10_entries_in_paper_order() {
        assert_eq!(UDP_TABLE_PORTS.len(), 10);
        assert_eq!(UDP_TABLE_PORTS[0].0, 37547);
        assert_eq!(UDP_TABLE_PORTS[1], (137, "NetBIOS"));
        assert_eq!(UDP_TABLE_PORTS[9], (1194, "OpenVPN"));
    }
}
