//! Prefix-preserving IP anonymization (Crypto-PAn style).
//!
//! Telescope operators do not share raw source addresses: the UCSD data
//! the paper used is distributed with prefix-preserving anonymization, and
//! the paper's own plan to "share IoT-relevant malicious empirical data …
//! with the research community" (§VI) requires the same. This module
//! implements the Xu et al. scheme's structure: each address bit is
//! flipped by a keyed pseudo-random function of all higher-order bits, so
//!
//! * the mapping is **deterministic** per key,
//! * it is a **bijection** on the address space, and
//! * two addresses sharing a `k`-bit prefix map to addresses sharing
//!   exactly a `k`-bit prefix (subnet structure survives, identities do
//!   not).
//!
//! The keyed PRF is a SplitMix64-based construction rather than AES (this
//! workspace carries no cipher dependency); it provides *research-data*
//! obfuscation, not cryptographic security against a key-recovery
//! adversary — the documented trade-off for a dependency-free build.

use std::net::Ipv4Addr;

/// A keyed prefix-preserving anonymizer.
///
/// # Example
///
/// ```
/// use iotscope_net::anon::Anonymizer;
/// use std::net::Ipv4Addr;
///
/// let anon = Anonymizer::new(0xfeed_beef);
/// let a = anon.anonymize(Ipv4Addr::new(192, 0, 2, 1));
/// let b = anon.anonymize(Ipv4Addr::new(192, 0, 2, 200));
/// // Same /24 in, same /24 out.
/// assert_eq!(a.octets()[..3], b.octets()[..3]);
/// assert_ne!(a, Ipv4Addr::new(192, 0, 2, 1));
/// assert_eq!(anon.de_anonymize(a), Ipv4Addr::new(192, 0, 2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anonymizer {
    key: u64,
}

impl Anonymizer {
    /// Create an anonymizer from a secret key.
    pub fn new(key: u64) -> Self {
        Anonymizer { key }
    }

    /// Anonymize one address, preserving prefix relationships.
    pub fn anonymize(&self, ip: Ipv4Addr) -> Ipv4Addr {
        let addr = u32::from(ip);
        let mut out = 0u32;
        for bit in 0..32u32 {
            // The flip decision for bit `bit` depends only on the key and
            // the *original* higher-order bits — the Crypto-PAn structure.
            let prefix = if bit == 0 { 0 } else { addr >> (32 - bit) };
            let flip = (prf(self.key, bit, prefix) & 1) as u32;
            let original = (addr >> (31 - bit)) & 1;
            out = (out << 1) | (original ^ flip);
        }
        Ipv4Addr::from(out)
    }

    /// Invert [`anonymize`](Self::anonymize) under the same key.
    pub fn de_anonymize(&self, ip: Ipv4Addr) -> Ipv4Addr {
        let anon = u32::from(ip);
        let mut original = 0u32;
        for bit in 0..32u32 {
            // Recover the original bits top-down: the flip mask for bit i
            // depends on original bits 0..i, which are known by induction.
            // After `bit` iterations, `original` holds exactly those bits
            // (as an integer), which is the prefix value anonymize used.
            let prefix = original;
            let flip = (prf(self.key, bit, prefix) & 1) as u32;
            let anon_bit = (anon >> (31 - bit)) & 1;
            original = (original << 1) | (anon_bit ^ flip);
        }
        Ipv4Addr::from(original)
    }

    /// Anonymize the source and destination of a flowtuple (the record
    /// shape shared with the community keeps ports/flags/counters).
    pub fn anonymize_flow(
        &self,
        flow: &crate::flowtuple::FlowTuple,
    ) -> crate::flowtuple::FlowTuple {
        let mut out = *flow;
        out.src_ip = self.anonymize(flow.src_ip);
        out.dst_ip = self.anonymize(flow.dst_ip);
        out
    }
}

/// Keyed PRF over (bit index, prefix) — SplitMix64 finalization.
fn prf(key: u64, bit: u32, prefix: u32) -> u64 {
    let mut z = key
        .wrapping_add(u64::from(bit).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(prefix).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_key() {
        let a = Anonymizer::new(7);
        let b = Anonymizer::new(7);
        let c = Anonymizer::new(8);
        let ip = Ipv4Addr::new(203, 0, 113, 99);
        assert_eq!(a.anonymize(ip), b.anonymize(ip));
        assert_ne!(a.anonymize(ip), c.anonymize(ip));
    }

    #[test]
    fn identity_is_hidden() {
        let anon = Anonymizer::new(42);
        let mut changed = 0;
        for i in 0..=255u8 {
            let ip = Ipv4Addr::new(10, 0, 0, i);
            if anon.anonymize(ip) != ip {
                changed += 1;
            }
        }
        assert!(changed > 250, "only {changed} of 256 addresses changed");
    }

    #[test]
    fn flow_anonymization_keeps_everything_else() {
        use crate::flowtuple::FlowTuple;
        use crate::protocol::TcpFlags;
        let anon = Anonymizer::new(9);
        let f = FlowTuple::tcp(
            Ipv4Addr::new(198, 51, 100, 5),
            Ipv4Addr::new(44, 1, 2, 3),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(7);
        let g = anon.anonymize_flow(&f);
        assert_ne!(g.src_ip, f.src_ip);
        assert_ne!(g.dst_ip, f.dst_ip);
        assert_eq!(g.dst_port, 23);
        assert_eq!(g.packets, 7);
        assert_eq!(g.tcp_flags, f.tcp_flags);
    }

    fn shared_prefix_len(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
        (u32::from(a) ^ u32::from(b)).leading_zeros()
    }

    proptest! {
        /// The defining property: shared-prefix length is preserved
        /// exactly.
        #[test]
        fn prop_prefix_preserving(key: u64, a: u32, b: u32) {
            let anon = Anonymizer::new(key);
            let (a, b) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
            let (x, y) = (anon.anonymize(a), anon.anonymize(b));
            prop_assert_eq!(shared_prefix_len(a, b), shared_prefix_len(x, y));
        }

        /// Anonymization is invertible under the same key.
        #[test]
        fn prop_roundtrip(key: u64, ip: u32) {
            let anon = Anonymizer::new(key);
            let ip = Ipv4Addr::from(ip);
            prop_assert_eq!(anon.de_anonymize(anon.anonymize(ip)), ip);
        }

        /// Injectivity on sampled pairs (follows from invertibility, but
        /// cheap to check directly).
        #[test]
        fn prop_injective(key: u64, a: u32, b: u32) {
            prop_assume!(a != b);
            let anon = Anonymizer::new(key);
            prop_assert_ne!(
                anon.anonymize(Ipv4Addr::from(a)),
                anon.anonymize(Ipv4Addr::from(b))
            );
        }
    }
}
