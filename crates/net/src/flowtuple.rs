//! The corsaro-style *flowtuple* record and its binary codec.
//!
//! The UCSD telescope distributes processed darknet traffic as hourly
//! "flowtuple" files. Each record aggregates the packets of one incoming
//! flow and carries exactly the fields the paper lists (§III-A2):
//! source/destination IP addresses and ports, transport protocol, TTL,
//! TCP flags, IP length, and total packet count.
//!
//! Following the corsaro convention, ICMP flows reuse the port fields to
//! carry the ICMP type (in `src_port`) and code (in `dst_port`).

use crate::protocol::{IcmpType, TcpFlags, TransportProtocol};
use crate::NetError;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One aggregated flow observed at the telescope.
///
/// # Example
///
/// ```
/// use iotscope_net::flowtuple::FlowTuple;
/// use iotscope_net::protocol::TcpFlags;
/// use std::net::Ipv4Addr;
///
/// let ft = FlowTuple::tcp(
///     Ipv4Addr::new(198, 51, 100, 9),
///     Ipv4Addr::new(44, 1, 2, 3),
///     40000,
///     23,
///     TcpFlags::SYN,
/// );
/// assert!(ft.tcp_flags.is_bare_syn());
/// assert_eq!(ft.packets, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Source address (the host out on the Internet).
    pub src_ip: Ipv4Addr,
    /// Destination address (inside the dark space).
    pub dst_ip: Ipv4Addr,
    /// Source port; ICMP type for ICMP flows.
    pub src_port: u16,
    /// Destination port; ICMP code for ICMP flows.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: TransportProtocol,
    /// IP time-to-live of the first packet.
    pub ttl: u8,
    /// TCP flags (empty for UDP/ICMP).
    pub tcp_flags: TcpFlags,
    /// IP length of the first packet, bytes.
    pub ip_len: u16,
    /// Total packets aggregated in the flow.
    pub packets: u32,
}

impl FlowTuple {
    /// Encoded size upper bound in bytes (fixed fields + max varint).
    pub const MAX_ENCODED_LEN: usize = 4 + 4 + 2 + 2 + 1 + 1 + 1 + 2 + 5;

    /// A single-packet TCP flow.
    pub fn tcp(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
    ) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: TransportProtocol::Tcp,
            ttl: 64,
            tcp_flags: flags,
            ip_len: 40,
            packets: 1,
        }
    }

    /// A single-packet UDP flow.
    pub fn udp(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: TransportProtocol::Udp,
            ttl: 64,
            tcp_flags: TcpFlags::EMPTY,
            ip_len: 60,
            packets: 1,
        }
    }

    /// A single-packet ICMP flow; the type/code ride in the port fields.
    pub fn icmp(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, icmp_type: IcmpType) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port: u16::from(icmp_type.number()),
            dst_port: 0,
            protocol: TransportProtocol::Icmp,
            ttl: 64,
            tcp_flags: TcpFlags::EMPTY,
            ip_len: 84,
            packets: 1,
        }
    }

    /// Set the aggregated packet count (builder-style).
    pub fn with_packets(mut self, packets: u32) -> Self {
        self.packets = packets;
        self
    }

    /// Set the TTL (builder-style).
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// The ICMP type, if this is an ICMP flow with a modeled type.
    pub fn icmp_type(&self) -> Option<IcmpType> {
        if self.protocol != TransportProtocol::Icmp {
            return None;
        }
        u8::try_from(self.src_port)
            .ok()
            .and_then(IcmpType::from_number)
    }

    /// Serialize into `buf` using the fixed-field + varint layout.
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(u32::from(self.src_ip));
        buf.put_u32(u32::from(self.dst_ip));
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u8(self.protocol.number());
        buf.put_u8(self.ttl);
        buf.put_u8(self.tcp_flags.bits());
        buf.put_u16(self.ip_len);
        put_varint(buf, self.packets);
    }

    /// Deserialize one record from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] on truncation or an unknown protocol
    /// number.
    pub fn decode_from<B: Buf>(buf: &mut B) -> Result<Self, NetError> {
        const FIXED: usize = 4 + 4 + 2 + 2 + 1 + 1 + 1 + 2;
        if buf.remaining() < FIXED {
            return Err(NetError::Codec(format!(
                "truncated flowtuple: {} bytes remaining, need at least {FIXED}",
                buf.remaining()
            )));
        }
        let src_ip = Ipv4Addr::from(buf.get_u32());
        let dst_ip = Ipv4Addr::from(buf.get_u32());
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let proto_num = buf.get_u8();
        let protocol = TransportProtocol::from_number(proto_num)
            .ok_or_else(|| NetError::Codec(format!("unknown protocol number {proto_num}")))?;
        let ttl = buf.get_u8();
        let tcp_flags = TcpFlags::from_bits(buf.get_u8());
        let ip_len = buf.get_u16();
        let packets = get_varint(buf)?;
        Ok(FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
            ttl,
            tcp_flags,
            ip_len,
            packets,
        })
    }
}

impl FlowTuple {
    /// Serialize to the corsaro-style ASCII flowtuple line:
    /// `src|dst|src_port|dst_port|proto|ttl|flags|ip_len|packets`.
    ///
    /// # Example
    ///
    /// ```
    /// use iotscope_net::flowtuple::FlowTuple;
    /// use iotscope_net::protocol::TcpFlags;
    /// use std::net::Ipv4Addr;
    ///
    /// let ft = FlowTuple::tcp(
    ///     Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(44, 0, 0, 1),
    ///     40000, 23, TcpFlags::SYN,
    /// );
    /// let line = ft.to_ascii();
    /// assert_eq!(FlowTuple::from_ascii(&line).unwrap(), ft);
    /// ```
    pub fn to_ascii(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.protocol.number(),
            self.ttl,
            self.tcp_flags.bits(),
            self.ip_len,
            self.packets
        )
    }

    /// Parse a line produced by [`to_ascii`](Self::to_ascii).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] on wrong field counts, unparsable
    /// numbers or unknown protocols.
    pub fn from_ascii(line: &str) -> Result<FlowTuple, NetError> {
        let fields: Vec<&str> = line.trim().split('|').collect();
        if fields.len() != 9 {
            return Err(NetError::Codec(format!(
                "ascii flowtuple needs 9 fields, got {}",
                fields.len()
            )));
        }
        let bad = |what: &str, v: &str| NetError::Codec(format!("bad {what}: {v:?}"));
        let proto_num: u8 = fields[4].parse().map_err(|_| bad("protocol", fields[4]))?;
        Ok(FlowTuple {
            src_ip: fields[0].parse().map_err(|_| bad("src ip", fields[0]))?,
            dst_ip: fields[1].parse().map_err(|_| bad("dst ip", fields[1]))?,
            src_port: fields[2].parse().map_err(|_| bad("src port", fields[2]))?,
            dst_port: fields[3].parse().map_err(|_| bad("dst port", fields[3]))?,
            protocol: TransportProtocol::from_number(proto_num)
                .ok_or_else(|| bad("protocol number", fields[4]))?,
            ttl: fields[5].parse().map_err(|_| bad("ttl", fields[5]))?,
            tcp_flags: TcpFlags::from_bits(fields[6].parse().map_err(|_| bad("flags", fields[6]))?),
            ip_len: fields[7].parse().map_err(|_| bad("ip len", fields[7]))?,
            packets: fields[8].parse().map_err(|_| bad("packets", fields[8]))?,
        })
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{} flags={} ttl={} len={} pkts={}",
            self.protocol,
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port,
            self.tcp_flags,
            self.ttl,
            self.ip_len,
            self.packets
        )
    }
}

/// Write a LEB128-style varint.
pub(crate) fn put_varint<B: BufMut>(buf: &mut B, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128-style varint.
pub(crate) fn get_varint<B: Buf>(buf: &mut B) -> Result<u32, NetError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(NetError::Codec("truncated varint".to_owned()));
        }
        let byte = buf.get_u8();
        if shift >= 32 {
            return Err(NetError::Codec("varint overflows u32".to_owned()));
        }
        let low = u32::from(byte & 0x7f);
        if shift == 28 && low > 0x0f {
            return Err(NetError::Codec("varint overflows u32".to_owned()));
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_flows() -> Vec<FlowTuple> {
        vec![
            FlowTuple::tcp(
                Ipv4Addr::new(203, 0, 113, 5),
                Ipv4Addr::new(44, 9, 8, 7),
                40123,
                23,
                TcpFlags::SYN,
            ),
            FlowTuple::udp(
                Ipv4Addr::new(198, 51, 100, 77),
                Ipv4Addr::new(44, 0, 0, 1),
                5353,
                37547,
            )
            .with_packets(19),
            FlowTuple::icmp(
                Ipv4Addr::new(192, 0, 2, 33),
                Ipv4Addr::new(44, 255, 255, 254),
                IcmpType::EchoReply,
            )
            .with_ttl(250),
        ]
    }

    #[test]
    fn encode_decode_roundtrip_samples() {
        for ft in sample_flows() {
            let mut buf = Vec::new();
            ft.encode_into(&mut buf);
            assert!(buf.len() <= FlowTuple::MAX_ENCODED_LEN);
            let mut slice = buf.as_slice();
            let back = FlowTuple::decode_from(&mut slice).unwrap();
            assert_eq!(ft, back);
            assert!(slice.is_empty(), "decoder must consume exactly one record");
        }
    }

    #[test]
    fn decode_truncated_fails() {
        let ft = sample_flows()[0];
        let mut buf = Vec::new();
        ft.encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                FlowTuple::decode_from(&mut slice).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_unknown_protocol_fails() {
        let ft = sample_flows()[0];
        let mut buf = Vec::new();
        ft.encode_into(&mut buf);
        buf[12] = 99; // protocol byte
        let mut slice = buf.as_slice();
        let err = FlowTuple::decode_from(&mut slice).unwrap_err();
        assert!(format!("{err}").contains("protocol"));
    }

    #[test]
    fn icmp_type_accessor() {
        let ft = FlowTuple::icmp(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(44, 0, 0, 1),
            IcmpType::EchoRequest,
        );
        assert_eq!(ft.icmp_type(), Some(IcmpType::EchoRequest));
        let tcp = sample_flows()[0];
        assert_eq!(tcp.icmp_type(), None);
        // ICMP flow with an out-of-model type number yields None.
        let mut weird = ft;
        weird.src_port = 250;
        assert_eq!(weird.icmp_type(), None);
    }

    #[test]
    fn varint_known_values() {
        for (v, expect) in [
            (0u32, vec![0u8]),
            (1, vec![1]),
            (127, vec![0x7f]),
            (128, vec![0x80, 0x01]),
            (300, vec![0xac, 0x02]),
            (u32::MAX, vec![0xff, 0xff, 0xff, 0xff, 0x0f]),
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf, expect, "encoding of {v}");
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_detected() {
        let mut slice: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0x1f];
        assert!(get_varint(&mut slice).is_err());
        let mut slice: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn ascii_roundtrip_and_errors() {
        for ft in sample_flows() {
            let line = ft.to_ascii();
            assert_eq!(FlowTuple::from_ascii(&line).unwrap(), ft);
            // Trailing whitespace tolerated.
            assert_eq!(FlowTuple::from_ascii(&format!("{line}\n")).unwrap(), ft);
        }
        assert!(FlowTuple::from_ascii("1.2.3.4|too|few").is_err());
        assert!(FlowTuple::from_ascii("x|44.0.0.1|1|2|6|64|2|40|1").is_err());
        assert!(FlowTuple::from_ascii("1.2.3.4|44.0.0.1|1|2|99|64|2|40|1").is_err());
        assert!(FlowTuple::from_ascii("1.2.3.4|44.0.0.1|1|2|6|64|2|40|huge").is_err());
    }

    #[test]
    fn display_contains_endpoints() {
        let ft = sample_flows()[0];
        let s = ft.to_string();
        assert!(s.contains("203.0.113.5:40123"));
        assert!(s.contains("44.9.8.7:23"));
        assert!(s.contains("SYN"));
    }

    proptest! {
        #[test]
        fn prop_codec_roundtrip(
            src: u32, dst: u32, sport: u16, dport: u16,
            proto_idx in 0usize..3, ttl: u8, flags: u8, ip_len: u16, packets: u32,
        ) {
            let ft = FlowTuple {
                src_ip: Ipv4Addr::from(src),
                dst_ip: Ipv4Addr::from(dst),
                src_port: sport,
                dst_port: dport,
                protocol: TransportProtocol::ALL[proto_idx],
                ttl,
                tcp_flags: TcpFlags::from_bits(flags),
                ip_len,
                packets,
            };
            let mut buf = Vec::new();
            ft.encode_into(&mut buf);
            prop_assert!(buf.len() <= FlowTuple::MAX_ENCODED_LEN);
            let mut slice = buf.as_slice();
            let back = FlowTuple::decode_from(&mut slice).unwrap();
            prop_assert_eq!(ft, back);
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn prop_varint_roundtrip(v: u32) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            prop_assert_eq!(get_varint(&mut slice).unwrap(), v);
            prop_assert!(slice.is_empty());
        }
    }
}
