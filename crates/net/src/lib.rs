//! Network substrate for the `iotscope` workspace.
//!
//! This crate provides the low-level building blocks shared by the darknet
//! simulator ([`iotscope-telescope`]), the IoT device inventory
//! ([`iotscope-devicedb`]) and the analysis pipeline ([`iotscope-core`]):
//!
//! * IPv4 address arithmetic and CIDR prefixes ([`addr`]),
//! * a longest-prefix-match trie for IP-keyed metadata ([`trie`]),
//! * transport-protocol, TCP-flag and ICMP-type taxonomies with the
//!   backscatter classification rules used by the paper ([`protocol`]),
//! * a registry of well-known and IoT/ICS-relevant ports ([`ports`]),
//! * the corsaro-style *flowtuple* record and its binary codec
//!   ([`flowtuple`]),
//! * an hourly flowtuple file store mirroring the UCSD telescope data
//!   layout ([`store`]),
//! * a year-scale segment container packing many hours behind a
//!   checksummed manifest, read zero-copy through read-only memory
//!   maps ([`segment`], [`mmap`]),
//! * hour-granularity time intervals and the paper's 143-hour analysis
//!   window ([`time`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), iotscope_net::NetError> {
//! use iotscope_net::{addr::Ipv4Cidr, flowtuple::FlowTuple, protocol::TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let telescope: Ipv4Cidr = "44.0.0.0/8".parse()?;
//! let ft = FlowTuple::tcp(
//!     Ipv4Addr::new(203, 0, 113, 7),
//!     Ipv4Addr::new(44, 12, 34, 56),
//!     51234,
//!     23,
//!     TcpFlags::SYN,
//! );
//! assert!(telescope.contains(ft.dst_ip));
//! # Ok(())
//! # }
//! ```
//!
//! [`iotscope-telescope`]: https://example.org/iotscope
//! [`iotscope-devicedb`]: https://example.org/iotscope
//! [`iotscope-core`]: https://example.org/iotscope

// `deny` rather than `forbid`: the crate stays unsafe-free except for
// the one audited mmap(2) FFI module below, which opts back in
// explicitly (its safety argument is in DESIGN.md §3g).
#![deny(unsafe_code)]

pub mod addr;
pub mod anon;
pub mod flowtuple;
#[allow(unsafe_code)]
pub mod mmap;
pub mod ports;
pub mod protocol;
pub mod segment;
pub mod store;
pub mod time;
pub mod trie;

use std::error::Error;
use std::fmt;

/// Errors produced by the network substrate.
///
/// All fallible public functions in this crate return `Result<_, NetError>`.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A textual CIDR or address failed to parse.
    ParseCidr(String),
    /// A prefix length was outside `0..=32`.
    InvalidPrefixLen(u8),
    /// A flowtuple record or file was malformed.
    Codec(String),
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A time interval was invalid (e.g. end before start).
    InvalidInterval(String),
}

impl NetError {
    /// Whether this is the flowtuple store's checksum rejection —
    /// corruption detected, as opposed to truncation or bad structure.
    /// The store metrics use this to count `store.checksum_failures`.
    pub fn is_checksum_mismatch(&self) -> bool {
        // `contains` rather than `starts_with`: v3 block failures are
        // reported as "block N: checksum mismatch ...".
        matches!(self, NetError::Codec(msg) if msg.contains("checksum mismatch"))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ParseCidr(s) => write!(f, "invalid CIDR syntax: {s}"),
            NetError::InvalidPrefixLen(n) => {
                write!(f, "invalid prefix length {n} (expected 0..=32)")
            }
            NetError::Codec(s) => write!(f, "flowtuple codec error: {s}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::InvalidInterval(s) => write!(f, "invalid interval: {s}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_error_is_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<NetError>();
        assert_sync::<NetError>();
    }

    #[test]
    fn net_error_display_is_lowercase_and_concise() {
        let e = NetError::InvalidPrefixLen(40);
        let msg = format!("{e}");
        assert!(msg.starts_with("invalid prefix length"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn net_error_from_io_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = NetError::from(io);
        assert!(e.source().is_some());
    }
}
