//! Load-generation harness: a worker pool driving concurrent keep-alive
//! clients against an [`HttpServer`](crate::http::HttpServer), with
//! per-endpoint latency histograms from `iotscope-obs`.
//!
//! The perf bin runs this concurrently with full-rate ingest and
//! records the resulting p50/p99 per endpoint plus ingest throughput
//! into the bench JSON (`serve.<endpoint>.p99_ns`,
//! `serve.ingest_hours_per_s`).

use crate::latency_bounds_ns;
use iotscope_obs::Histogram;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to drive.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent client workers.
    pub workers: usize,
    /// Request paths, hit round-robin by every worker.
    pub paths: Vec<String>,
    /// How long to keep driving (per worker).
    pub duration: Duration,
}

/// Per-path results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointLoad {
    /// The request path.
    pub path: String,
    /// Completed 2xx requests.
    pub requests: u64,
    /// I/O failures and non-2xx responses.
    pub errors: u64,
    /// Median latency in nanoseconds (0 if no request completed).
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds (0 if none).
    pub p99_ns: u64,
    /// Mean latency in nanoseconds (0 if none).
    pub mean_ns: u64,
}

/// Drive `opts.workers` concurrent keep-alive clients against `addr`
/// until `opts.duration` elapses (or `stop` flips true, whichever is
/// first), and return per-path latency aggregates in `opts.paths`
/// order.
pub fn run(addr: SocketAddr, opts: &LoadOptions, stop: &AtomicBool) -> Vec<EndpointLoad> {
    if opts.paths.is_empty() {
        return Vec::new();
    }
    let histograms: Vec<Histogram> = opts
        .paths
        .iter()
        .map(|_| Histogram::detached(&latency_bounds_ns()))
        .collect();
    let errors: Vec<Arc<AtomicU64>> = opts.paths.iter().map(|_| Arc::default()).collect();
    let deadline = Instant::now() + opts.duration;
    std::thread::scope(|scope| {
        for _ in 0..opts.workers.max(1) {
            let histograms = &histograms;
            let errors = &errors;
            let paths = &opts.paths;
            scope.spawn(move || {
                let mut client = None;
                // Round-robin by cursor so the deadline and stop flag
                // are honored per request, not per full sweep — with a
                // slow endpoint in the mix, a sweep-granular check can
                // overshoot the deadline by the whole sweep.
                let mut next = 0usize;
                while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
                    let i = next % paths.len();
                    next += 1;
                    let path = &paths[i];
                    let conn = match client.take() {
                        Some(c) => c,
                        None => match connect(addr) {
                            Ok(c) => c,
                            Err(_) => {
                                // Charged to the path this request was
                                // for, which `i` now tracks exactly.
                                errors[i].fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        },
                    };
                    let start = Instant::now();
                    match request(conn, path) {
                        Ok((conn, ok)) => {
                            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            if ok {
                                histograms[i].observe(ns);
                            } else {
                                errors[i].fetch_add(1, Ordering::Relaxed);
                            }
                            client = Some(conn);
                        }
                        Err(_) => {
                            // Connection died; reconnect on the next
                            // request rather than spinning here.
                            errors[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    opts.paths
        .iter()
        .zip(&histograms)
        .zip(&errors)
        .map(|((path, h), e)| EndpointLoad {
            path: path.clone(),
            requests: h.count(),
            errors: e.load(Ordering::Relaxed),
            p50_ns: h.quantile(0.50).unwrap_or(0),
            p99_ns: h.quantile(0.99).unwrap_or(0),
            mean_ns: if h.count() == 0 {
                0
            } else {
                h.sum() / h.count()
            },
        })
        .collect()
}

fn connect(addr: SocketAddr) -> io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true).ok();
    Ok(BufReader::new(stream))
}

/// Issue one keep-alive GET and read the full response. Returns the
/// connection for reuse and whether the response was 2xx.
fn request(mut conn: BufReader<TcpStream>, path: &str) -> io::Result<(BufReader<TcpStream>, bool)> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: iotscope\r\nConnection: keep-alive\r\n\r\n");
    conn.get_mut().write_all(req.as_bytes())?;
    let mut status_line = String::new();
    if conn.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
    }
    let ok = status_line
        .split_whitespace()
        .nth(1)
        .is_some_and(|code| code.starts_with('2'));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if conn.read_line(&mut header)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body)?;
    Ok((conn, ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpServer;
    use crate::TelescopeService;
    use iotscope_core::stream::StreamConfig;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

    #[test]
    fn load_run_measures_served_endpoints() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(81));
        let traffic = built.scenario.generate();
        let service = Arc::new(TelescopeService::new(
            built.inventory.db,
            built.inventory.isps,
            143,
        ));
        service.ingest(&traffic[..12], StreamConfig::default(), &mut |_| {});
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let stop = AtomicBool::new(false);
        let results = run(
            server.local_addr(),
            &LoadOptions {
                workers: 2,
                paths: vec!["/summary".into(), "/healthz".into()],
                duration: Duration::from_millis(300),
            },
            &stop,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.requests > 0, "no requests completed for {}", r.path);
            assert_eq!(r.errors, 0, "errors on {}", r.path);
            assert!(r.p50_ns > 0 && r.p99_ns >= r.p50_ns);
        }
    }

    #[test]
    fn load_run_charges_errors_to_the_attempted_path() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(82));
        let traffic = built.scenario.generate();
        let service = Arc::new(TelescopeService::new(
            built.inventory.db,
            built.inventory.isps,
            143,
        ));
        service.ingest(&traffic[..6], StreamConfig::default(), &mut |_| {});
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let stop = AtomicBool::new(false);
        let results = run(
            server.local_addr(),
            &LoadOptions {
                workers: 2,
                paths: vec!["/healthz".into(), "/no-such-endpoint".into()],
                duration: Duration::from_millis(200),
            },
            &stop,
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].errors, 0, "healthy path must stay clean");
        assert!(results[0].requests > 0);
        assert_eq!(results[1].requests, 0, "404s are errors, not requests");
        assert!(results[1].errors > 0, "404s charged to the 404ing path");
    }

    #[test]
    fn load_run_stops_promptly_and_handles_empty_paths() {
        // No paths: nothing to drive, nothing to divide by.
        let stop = AtomicBool::new(false);
        let addr: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run(
            addr,
            &LoadOptions {
                workers: 2,
                paths: vec![],
                duration: Duration::from_millis(50),
            },
            &stop,
        )
        .is_empty());
        // Pre-flipped stop flag: workers must exit before the deadline
        // even though every connect would fail (nothing listens on the
        // address above).
        let stop = AtomicBool::new(true);
        let start = std::time::Instant::now();
        let results = run(
            addr,
            &LoadOptions {
                workers: 2,
                paths: vec!["/healthz".into()],
                duration: Duration::from_secs(30),
            },
            &stop,
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stop flag must short-circuit the duration"
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].requests, 0);
    }
}
