//! Minimal hand-rolled JSON emission (the crate is zero-dependency,
//! like `iotscope-obs`'s exporters). Only what the endpoint payloads
//! need: escaped strings, number formatting, and array joining.

use std::fmt::Write as _;

/// Render `s` as a JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot carry).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's float Display never uses exponent notation, so the
        // output is always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Join pre-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn arrays_join() {
        assert_eq!(array(["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
