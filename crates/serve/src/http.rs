//! A zero-dependency HTTP/1.1 listener over [`TelescopeService`].
//!
//! `std::net::TcpListener` + a thread per connection with keep-alive:
//! no async runtime, no external crates, same discipline as
//! `iotscope-obs`'s exporters. Handlers only ever clone the current
//! snapshot `Arc`, so slow clients never block ingest.

use crate::{error_body, TelescopeService};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle keep-alive connection may sit between requests
/// before the handler thread gives up on it.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// The listener: an accept-loop thread spawning one handler thread per
/// connection. Dropping (or [`shutdown`](Self::shutdown)) stops the
/// accept loop and refuses further connections; in-flight handlers
/// drain on their own read timeouts.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (port in use, permission).
    pub fn bind(addr: &str, service: Arc<TelescopeService>) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop_accept);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &stop);
                });
            }
        });
        Ok(HttpServer {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        if let Ok(s) = TcpStream::connect(self.addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one keep-alive connection until the peer closes, a request
/// times out, or the server stops.
fn handle_connection(
    stream: TcpStream,
    service: &TelescopeService,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(()); // peer closed
        }
        let mut parts = request_line.split_whitespace();
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), v) => (m.to_owned(), t.to_owned(), v.unwrap_or("").to_owned()),
            _ => return Ok(()), // malformed; drop the connection
        };
        // The request target may carry a query string; routing is on
        // the path alone.
        let path = target.split('?').next().unwrap_or(&target).to_owned();
        // Drain headers; GET requests carry no body. Persistence
        // defaults per protocol version — HTTP/1.1 keeps alive,
        // HTTP/1.0 (and anything unrecognized) closes — and an explicit
        // `Connection` header overrides either way.
        let mut keep_alive = version == "HTTP/1.1";
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Ok(());
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header
                .to_ascii_lowercase()
                .strip_prefix("connection:")
                .map(str::trim)
            {
                match v {
                    "close" => keep_alive = false,
                    "keep-alive" => keep_alive = true,
                    _ => {}
                }
            }
        }
        let (status, body) = if method == "GET" {
            service.respond(&path)
        } else {
            (405, error_body("only GET is served"))
        };
        write_response(reader.get_mut(), status, &body, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
