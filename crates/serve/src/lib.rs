//! Telescope-as-a-service: the resident daemon behind `iotscope serve`.
//!
//! The batch pipeline answers one question per process. This crate
//! keeps the telescope *resident*: hours ingest incrementally through
//! [`StreamingAnalyzer`], and after every hour the service publishes an
//! immutable [`Snapshot`] by swapping an `Arc` in a [`SnapshotCell`] —
//! readers clone the current `Arc` and query it for as long as they
//! like while ingest races ahead. A snapshot is never mutated after
//! publication, so there are no torn reads by construction; the
//! concurrent-reader property test in `iotscope-tests` further pins
//! every published epoch to a from-scratch batch analysis of exactly
//! that epoch's hour prefix.
//!
//! Queries go through the unified [`QueryApi`] surface from
//! `iotscope-core` — the same trait the CLI `report`/`investigate`
//! commands consume — so an HTTP response and a batch report can never
//! disagree about an aggregate. [`http::HttpServer`] exposes the
//! endpoints over a zero-dependency HTTP/1.1 listener, and [`load`]
//! provides the load-generation harness the perf bin uses to record
//! per-endpoint p50/p99 under full-rate ingest.

#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod load;

use iotscope_core::query::{QueryApi, QueryContext};
use iotscope_core::stream::{Alert, StreamConfig, StreamingAnalyzer};
use iotscope_core::{Analysis, Analyzer, ScoreConfig, ScoreRow, ScoreTable};
use iotscope_devicedb::isp::IspRegistry;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::IntelContext;
use iotscope_obs::{Counter, Histogram, Registry};
use iotscope_telescope::HourTraffic;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Traffic-class labels in [`class_idx`](iotscope_core::analysis::class_idx)
/// order, for the `/device/{id}` payload.
const CLASS_NAMES: [&str; 5] = ["tcp_scan", "icmp_scan", "backscatter", "udp", "other"];

/// The served endpoints, in routing order. Metric names derive from
/// these (`serve.requests.<endpoint>`, `serve.latency.<endpoint>`), and
/// the load harness and CI schema check iterate the same list.
pub const ENDPOINTS: [&str; 10] = [
    "healthz",
    "summary",
    "device",
    "realms",
    "countries",
    "isps",
    "alerts",
    "score_top",
    "score",
    "metrics",
];

/// Inclusive latency-histogram upper bounds: a 1-2-5 ladder from 1µs
/// to 1s, in nanoseconds.
pub fn latency_bounds_ns() -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut decade: u64 = 1_000;
    while decade <= 1_000_000_000 {
        for m in [1, 2, 5] {
            bounds.push(decade * m);
        }
        decade *= 10;
    }
    bounds
}

/// One immutable published analysis state. Readers hold it by `Arc`;
/// nothing mutates it after publication.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Publication sequence number: the number of hours ingested when
    /// this snapshot was published (0 = the empty pre-ingest state).
    /// Structurally-equal republications (the normalized final state)
    /// keep their epoch, so each epoch maps to exactly one hour prefix.
    pub epoch: u64,
    /// Hours ingested so far.
    pub hours_ingested: u32,
    /// Interval of the most recently ingested hour.
    pub last_interval: Option<u32>,
    /// The analysis over exactly the first `epoch` ingested hours.
    pub analysis: Arc<Analysis>,
    /// Alerts raised up to and including the last ingested hour.
    pub alerts: Arc<Vec<Alert>>,
    /// Per-device maliciousness scores over exactly the same hour
    /// prefix, when the service runs with intel attached. `None` when
    /// the service has no intel context.
    pub scores: Option<Arc<ScoreTable>>,
}

impl Snapshot {
    /// The empty pre-ingest snapshot for a window of `hours`.
    pub fn empty(db: &DeviceDb, hours: u32) -> Snapshot {
        Snapshot {
            epoch: 0,
            hours_ingested: 0,
            last_interval: None,
            analysis: Arc::new(Analyzer::new(db, hours).finish()),
            alerts: Arc::new(Vec::new()),
            scores: None,
        }
    }

    /// A [`QueryApi`] view over this snapshot.
    pub fn query<'a>(&'a self, db: &'a DeviceDb, isps: &'a IspRegistry) -> QueryContext<'a> {
        QueryContext::new(
            &self.analysis,
            db,
            isps,
            &self.alerts,
            self.epoch,
            self.hours_ingested,
        )
        .with_scores(self.scores.as_deref())
    }
}

/// The publication point: readers [`load`](Self::load) the current
/// `Arc<Snapshot>` without ever blocking ingest for longer than the
/// pointer swap itself.
///
/// A `RwLock<Arc<_>>` rather than a lock-free `ArcSwap`: the critical
/// sections are a clone (read) and a pointer store (write), both
/// nanoseconds, and std is the only dependency allowed here. Readers
/// never hold the lock while querying — they clone the `Arc` and
/// release.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: Snapshot) -> Self {
        SnapshotCell {
            inner: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone); the returned
    /// snapshot stays valid and immutable regardless of later
    /// publications.
    pub fn load(&self) -> Arc<Snapshot> {
        self.inner
            .read()
            .expect("snapshot cell not poisoned")
            .clone()
    }

    /// Atomically replace the current snapshot.
    pub fn publish(&self, snapshot: Snapshot) {
        *self.inner.write().expect("snapshot cell not poisoned") = Arc::new(snapshot);
    }
}

/// Per-endpoint request counters and latency histograms
/// (`serve.requests.*`, `serve.latency.*`; all
/// [variant](iotscope_obs::Stability::Variant) — request mixes and wall
/// time are never reproducible).
#[derive(Debug)]
struct ServeMetrics {
    requests: [Counter; ENDPOINTS.len()],
    latency: [Histogram; ENDPOINTS.len()],
    not_found: Counter,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> Self {
        let bounds = latency_bounds_ns();
        ServeMetrics {
            requests: std::array::from_fn(|i| {
                registry.counter_variant(&format!("serve.requests.{}", ENDPOINTS[i]))
            }),
            latency: std::array::from_fn(|i| {
                registry.histogram_variant(&format!("serve.latency.{}", ENDPOINTS[i]), &bounds)
            }),
            not_found: registry.counter_variant("serve.requests.not_found"),
        }
    }
}

/// The resident telescope: owns the inventory, ingests hours through
/// the streaming analyzer, publishes epoch snapshots, and answers
/// [`QueryApi`] queries — the one implementation behind both the HTTP
/// endpoints and the CLI.
#[derive(Debug)]
pub struct TelescopeService {
    db: DeviceDb,
    isps: IspRegistry,
    hours: u32,
    intel: Option<IntelContext>,
    cell: SnapshotCell,
    registry: Registry,
    metrics: ServeMetrics,
}

impl TelescopeService {
    /// A service over `db`/`isps` for a window of `hours`, holding the
    /// empty epoch-0 snapshot until ingest begins.
    pub fn new(db: DeviceDb, isps: IspRegistry, hours: u32) -> Self {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let cell = SnapshotCell::new(Snapshot::empty(&db, hours));
        TelescopeService {
            db,
            isps,
            hours,
            intel: None,
            cell,
            registry,
            metrics,
        }
    }

    /// Attach a threat-intel context: ingest runs the streaming score
    /// stage, snapshots carry the [`ScoreTable`], and the `/score/*`
    /// endpoints serve it. Without intel they answer empty/404.
    pub fn with_intel(mut self, intel: IntelContext) -> Self {
        self.intel = Some(intel);
        self
    }

    /// The attached intel context, if any.
    pub fn intel(&self) -> Option<&IntelContext> {
        self.intel.as_ref()
    }

    /// The inventory the service analyzes against.
    pub fn db(&self) -> &DeviceDb {
        &self.db
    }

    /// ISP metadata.
    pub fn isps(&self) -> &IspRegistry {
        &self.isps
    }

    /// The service's metric registry (stream + analysis + serve
    /// metrics all land here; `/metrics` serves its snapshot).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Ingest `traffic` hour by hour, publishing a new epoch snapshot
    /// after every hour and invoking `on_alert` for each alert as it
    /// fires (the live alert log — the CLI streams these to stdout).
    ///
    /// Readers querying concurrently observe each epoch `k` as exactly
    /// the analysis of the first `k` ingested hours: the published
    /// clone differs from a batch run only in device-row order, which
    /// [`Analysis`] equality ignores. Returns the final normalized
    /// analysis and the full alert log, after republishing them at the
    /// final epoch.
    ///
    /// # Panics
    ///
    /// Panics if hours arrive out of order (same contract as
    /// [`StreamingAnalyzer::push_hour`]).
    pub fn ingest(
        &self,
        traffic: &[HourTraffic],
        config: StreamConfig,
        on_alert: &mut dyn FnMut(&Alert),
    ) -> (Analysis, Vec<Alert>) {
        let base = self.cell.load();
        let (base_epoch, base_hours) = (base.epoch, base.hours_ingested);
        drop(base);
        let mut stream =
            StreamingAnalyzer::with_metrics(&self.db, self.hours, config, &self.registry);
        if let Some(intel) = &self.intel {
            stream = stream.with_intel(&intel.index, ScoreConfig::default());
        }
        let mut pushed = 0u32;
        for hour in traffic {
            for alert in stream.push_hour(hour) {
                on_alert(&alert);
            }
            pushed += 1;
            self.cell.publish(Snapshot {
                epoch: base_epoch + u64::from(pushed),
                hours_ingested: base_hours + pushed,
                last_interval: stream.last_interval(),
                analysis: Arc::new(stream.snapshot()),
                alerts: Arc::new(stream.alerts().to_vec()),
                scores: stream.scores().map(|t| Arc::new(t.clone())),
            });
        }
        let last_interval = stream.last_interval();
        let (analysis, alerts, scores) = stream.finish_with_scores();
        // Republish the normalized final state at the same epoch — it
        // is structurally equal to the last per-hour publication, just
        // with device rows in id order, so readers keep their
        // epoch↔prefix mapping.
        self.cell.publish(Snapshot {
            epoch: base_epoch + u64::from(pushed),
            hours_ingested: base_hours + pushed,
            last_interval,
            analysis: Arc::new(analysis.clone()),
            alerts: Arc::new(alerts.clone()),
            scores: scores.map(Arc::new),
        });
        (analysis, alerts)
    }

    /// Answer one request: route `path`, execute it against the current
    /// snapshot through [`QueryApi`], and return `(status, json body)`.
    /// Counts the request and records its latency per endpoint.
    pub fn respond(&self, path: &str) -> (u16, String) {
        let start = Instant::now();
        let (endpoint, status, body) = self.route(path);
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match ENDPOINTS.iter().position(|e| Some(*e) == endpoint) {
            Some(i) => {
                self.metrics.requests[i].inc();
                self.metrics.latency[i].observe(elapsed);
            }
            None => self.metrics.not_found.inc(),
        }
        (status, body)
    }

    fn route(&self, path: &str) -> (Option<&'static str>, u16, String) {
        let path = path.split('?').next().unwrap_or(path);
        let snap = self.cell.load();
        let api = snap.query(&self.db, &self.isps);
        match path {
            "/healthz" => (Some("healthz"), 200, self.render_healthz(&snap)),
            "/summary" => (Some("summary"), 200, render_summary(&api.summary())),
            "/realms" => (Some("realms"), 200, render_realms(&api.realms())),
            "/countries" => (Some("countries"), 200, render_countries(&api.countries())),
            "/isps" => (Some("isps"), 200, render_isps(&api)),
            "/alerts" => (Some("alerts"), 200, render_alerts(api.alerts())),
            "/score/top" => (
                Some("score_top"),
                200,
                render_score_top(&api.top_scores(20)),
            ),
            "/metrics" => (Some("metrics"), 200, self.registry.snapshot().to_json()),
            _ => {
                if let Some(rest) = path.strip_prefix("/device/") {
                    match rest.parse::<u32>() {
                        Ok(raw) => match api.device(DeviceId(raw)) {
                            Some(d) => (Some("device"), 200, render_device(&d)),
                            None => (Some("device"), 404, error_body("device not observed")),
                        },
                        Err(_) => (Some("device"), 400, error_body("invalid device id")),
                    }
                } else if let Some(rest) = path.strip_prefix("/score/") {
                    match rest.parse::<u32>() {
                        Ok(raw) => match api.score(DeviceId(raw)) {
                            Some(r) => (Some("score"), 200, render_score(&r)),
                            None => (Some("score"), 404, error_body("no score for device")),
                        },
                        Err(_) => (Some("score"), 400, error_body("invalid device id")),
                    }
                } else {
                    (None, 404, error_body("not found"))
                }
            }
        }
    }

    fn render_healthz(&self, snap: &Snapshot) -> String {
        format!(
            "{{\"status\":\"ok\",\"epoch\":{},\"hours_ingested\":{},\"last_interval\":{}}}",
            snap.epoch,
            snap.hours_ingested,
            match snap.last_interval {
                Some(i) => i.to_string(),
                None => "null".to_owned(),
            }
        )
    }
}

/// A JSON error payload.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}", json::string(message))
}

fn render_summary(s: &iotscope_core::query::Summary) -> String {
    format!(
        "{{\"epoch\":{},\"hours_window\":{},\"hours_ingested\":{},\"devices\":{},\
         \"consumer\":{},\"cps\":{},\"countries\":{},\"total_packets\":{},\
         \"unmatched_flows\":{},\"unmatched_packets\":{},\"alerts\":{}}}",
        s.epoch,
        s.hours_window,
        s.hours_ingested,
        s.devices,
        s.consumer,
        s.cps,
        s.countries,
        s.total_packets,
        s.unmatched_flows,
        s.unmatched_packets,
        s.alerts,
    )
}

fn render_realms(realms: &[iotscope_core::query::RealmStats; 2]) -> String {
    let rows = realms.iter().map(|r| {
        format!(
            "{{\"realm\":{},\"deployed\":{},\"compromised\":{},\"packets\":{}}}",
            json::string(&r.realm.to_string()),
            r.deployed,
            r.compromised,
            r.packets,
        )
    });
    format!("{{\"realms\":{}}}", json::array(rows))
}

fn render_countries(rows: &[iotscope_core::characterize::CountryRow]) -> String {
    let top = rows.iter().take(15).map(|r| {
        format!(
            "{{\"country\":{},\"consumer\":{},\"cps\":{},\"pct_compromised\":{}}}",
            json::string(r.country.name()),
            r.consumer,
            r.cps,
            match r.pct_compromised {
                Some(p) => json::number(p),
                None => "null".to_owned(),
            },
        )
    });
    format!("{{\"count\":{},\"rows\":{}}}", rows.len(), json::array(top))
}

fn render_isps(api: &dyn QueryApi) -> String {
    let render = |realm| {
        json::array(api.isps(realm, 5).into_iter().map(|r| {
            format!(
                "{{\"name\":{},\"country\":{},\"devices\":{},\"pct\":{}}}",
                json::string(&r.name),
                json::string(&r.country),
                r.devices,
                json::number(r.pct),
            )
        }))
    };
    format!(
        "{{\"consumer\":{},\"cps\":{}}}",
        render(Realm::Consumer),
        render(Realm::Cps)
    )
}

fn render_alerts(alerts: &[Alert]) -> String {
    let recent = alerts
        .iter()
        .rev()
        .take(50)
        .rev()
        .map(|a| json::string(&a.to_string()));
    format!(
        "{{\"count\":{},\"recent\":{}}}",
        alerts.len(),
        json::array(recent)
    )
}

fn render_score(r: &ScoreRow) -> String {
    let categories = json::array(r.categories().iter().map(|c| json::string(&c.to_string())));
    format!(
        "{{\"id\":{},\"realm\":{},\"tier\":{},\"points\":{},\"categories\":{categories},\
         \"samples\":{},\"scan_packets\":{},\"backscatter_packets\":{},\"total_packets\":{}}}",
        r.device.0,
        json::string(&r.realm.to_string()),
        json::string(&r.tier.to_string()),
        r.points,
        r.samples,
        r.scan_packets,
        r.backscatter_packets,
        r.total_packets,
    )
}

fn render_score_top(rows: &[ScoreRow]) -> String {
    format!(
        "{{\"count\":{},\"rows\":{}}}",
        rows.len(),
        json::array(rows.iter().map(render_score))
    )
}

fn render_device(d: &iotscope_core::query::DeviceDetail) -> String {
    let packets = CLASS_NAMES
        .iter()
        .zip(d.packets_by_class)
        .map(|(name, n)| format!("{}:{n}", json::string(name)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"id\":{},\"ip\":{},\"realm\":{},\"country\":{},\"isp\":{},\
         \"first_interval\":{},\"days_active\":{},\"flows\":{},\
         \"total_packets\":{},\"packets\":{{{packets}}}}}",
        d.id.0,
        json::string(&d.ip.to_string()),
        json::string(&d.realm.to_string()),
        json::string(&d.country),
        json::string(&d.isp),
        d.first_interval,
        d.days_active,
        d.flows,
        d.total_packets(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

    fn service_with_traffic(seed: u64) -> (TelescopeService, Vec<HourTraffic>) {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(seed));
        let traffic = built.scenario.generate();
        let service = TelescopeService::new(built.inventory.db, built.inventory.isps, 143);
        (service, traffic)
    }

    #[test]
    fn epoch_zero_serves_the_empty_state() {
        let (service, _) = service_with_traffic(71);
        let snap = service.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.analysis.device_count(), 0);
        let (code, body) = service.respond("/summary");
        assert_eq!(code, 200);
        assert!(body.contains("\"epoch\":0"));
        assert!(body.contains("\"devices\":0"));
    }

    #[test]
    fn ingest_publishes_monotone_epochs_and_final_state() {
        let (service, traffic) = service_with_traffic(72);
        let mut alert_count = 0usize;
        let (analysis, alerts) =
            service.ingest(&traffic[..48], StreamConfig::default(), &mut |_| {
                alert_count += 1;
            });
        assert_eq!(alert_count, alerts.len());
        let snap = service.snapshot();
        assert_eq!(snap.epoch, 48);
        assert_eq!(snap.hours_ingested, 48);
        assert_eq!(snap.last_interval, Some(48));
        assert_eq!(*snap.analysis, analysis);
        assert_eq!(*snap.alerts, alerts);
    }

    #[test]
    fn endpoints_serve_query_api_results() {
        let (service, traffic) = service_with_traffic(73);
        service.ingest(&traffic[..24], StreamConfig::default(), &mut |_| {});
        let snap = service.snapshot();
        let api = snap.query(service.db(), service.isps());

        let (code, body) = service.respond("/summary");
        assert_eq!(code, 200);
        assert_eq!(body, render_summary(&api.summary()));

        let (code, body) = service.respond("/realms");
        assert_eq!(code, 200);
        assert!(body.contains("\"realm\":\"Consumer\""));

        let (code, body) = service.respond("/countries");
        assert_eq!(code, 200);
        assert!(body.contains("\"count\":"));

        let (code, body) = service.respond("/isps");
        assert_eq!(code, 200);
        assert!(body.contains("\"consumer\":["));

        let id = api.summary();
        assert!(id.devices > 0);
        let first = snap.analysis.view().compromised()[0];
        let (code, body) = service.respond(&format!("/device/{}", first.0));
        assert_eq!(code, 200);
        assert!(body.contains("\"ip\":"));

        let (code, _) = service.respond("/device/4294967295");
        assert_eq!(code, 404);
        let (code, _) = service.respond("/device/bogus");
        assert_eq!(code, 400);
        let (code, _) = service.respond("/nope");
        assert_eq!(code, 404);

        // Without intel attached, the score surface is empty but routed.
        let (code, body) = service.respond("/score/top");
        assert_eq!(code, 200);
        assert!(body.contains("\"count\":0"), "{body}");
        let (code, _) = service.respond(&format!("/score/{}", first.0));
        assert_eq!(code, 404);
        let (code, _) = service.respond("/score/bogus");
        assert_eq!(code, 400);

        let (code, body) = service.respond("/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("serve.requests.summary"));
        assert!(body.contains("stream.hours_pushed"));
    }

    #[test]
    fn request_metrics_count_and_time() {
        let (service, _) = service_with_traffic(74);
        for _ in 0..3 {
            service.respond("/healthz");
        }
        service.respond("/missing");
        let snap = service.registry().snapshot();
        assert_eq!(snap.counter("serve.requests.healthz"), Some(3));
        assert_eq!(snap.counter("serve.requests.not_found"), Some(1));
        match &snap.get("serve.latency.healthz").unwrap().value {
            iotscope_obs::SnapshotValue::Histogram { count, .. } => assert_eq!(*count, 3),
            other => panic!("latency must be a histogram, got {other:?}"),
        }
    }

    #[test]
    fn score_endpoints_serve_the_streamed_table() {
        use iotscope_core::malicious::select_candidates;
        use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
        use iotscope_core::ScoreTable;
        use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};

        let built = PaperScenario::build(PaperScenarioConfig::tiny(76));
        let traffic = built.scenario.generate();
        // Synthesize intel correlated with the scenario's ground truth,
        // exactly as the CLI `serve --intel` wiring does.
        let batch = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let candidates = select_candidates(&batch, 200);
        let intel =
            IntelBuilder::new(IntelSynthConfig::paper(76)).build(&built.inventory.db, &candidates);
        let service = TelescopeService::new(built.inventory.db, built.inventory.isps, 143)
            .with_intel(IntelContext::from_synth(intel));
        service.ingest(&traffic, StreamConfig::default(), &mut |_| {});

        let snap = service.snapshot();
        let scores = snap.scores.as_deref().expect("intel run publishes scores");
        let expected = ScoreTable::from_batch(
            &snap.analysis,
            service.db(),
            &service.intel().unwrap().index,
            Default::default(),
        );
        assert_eq!(*scores, expected, "published table matches batch join");

        let top = snap.query(service.db(), service.isps()).top_scores(20);
        assert!(!top.is_empty(), "scenario plants scored devices");
        let (code, body) = service.respond("/score/top");
        assert_eq!(code, 200);
        assert_eq!(body, render_score_top(&top));
        assert!(body.contains("\"tier\":"), "{body}");

        let first = top[0].device;
        let (code, body) = service.respond(&format!("/score/{}", first.0));
        assert_eq!(code, 200);
        assert_eq!(body, render_score(&top[0]));

        let (code, _) = service.respond("/score/4294967295");
        assert_eq!(code, 404);
        let (code, body) = service.respond("/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("serve.requests.score_top"));
    }

    #[test]
    fn alerts_endpoint_renders_display_lines() {
        let (service, traffic) = service_with_traffic(75);
        service.ingest(&traffic, StreamConfig::default(), &mut |_| {});
        let (code, body) = service.respond("/alerts");
        assert_eq!(code, 200);
        assert!(body.contains("\"count\":"));
        // The planted interval-119 port sweep renders via Alert's
        // Display, same line the CLI watch streams.
        assert!(body.contains("SWEEP"), "{body}");
    }
}
