//! The scenario engine: an actor population plus deterministic per-hour
//! traffic generation.
//!
//! Each `(actor, interval)` pair gets its own RNG stream derived from the
//! scenario seed, so the generated traffic is identical whether hours are
//! generated one at a time, out of order, or in parallel.

use crate::behavior::Actor;
use crate::config::TelescopeConfig;
use crate::derive_seed;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::store::FlowStore;
use iotscope_net::time::UnixHour;
use iotscope_net::NetError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One hour of generated telescope traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct HourTraffic {
    /// 1-based interval index within the window.
    pub interval: u32,
    /// Absolute hour.
    pub hour: UnixHour,
    /// The flows captured in this hour.
    pub flows: Vec<FlowTuple>,
}

impl HourTraffic {
    /// Total packets across the hour's flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|f| u64::from(f.packets)).sum()
    }
}

/// Precomputed per-actor schedule state.
#[derive(Debug, Clone)]
struct ActorSchedule {
    /// Sum of pattern weights over active intervals (≥ onset).
    total_weight: f64,
    /// First interval with positive weight at/after onset, if any.
    first_active: Option<u32>,
}

/// An actor population bound to a telescope, ready to generate traffic.
///
/// # Example
///
/// ```
/// use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
///
/// let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
/// let hours = built.scenario.generate();
/// assert_eq!(hours.len() as u32, built.scenario.telescope().window.num_hours());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    telescope: TelescopeConfig,
    seed: u64,
    actors: Vec<Actor>,
    schedules: Vec<ActorSchedule>,
}

impl Scenario {
    /// Bind `actors` to a telescope under a master seed.
    pub fn new(telescope: TelescopeConfig, seed: u64, actors: Vec<Actor>) -> Self {
        let hours = telescope.window.num_hours();
        let schedules = actors
            .iter()
            .map(|a| {
                let mut total = 0.0;
                let mut first = None;
                for i in 1..=hours {
                    if i < a.onset || i > a.retire {
                        continue;
                    }
                    let w = a.pattern.weight(i, hours);
                    if w > 0.0 && first.is_none() {
                        first = Some(i);
                    }
                    total += w;
                }
                // An actor whose pattern has no active hour at/after its
                // onset (e.g. a sparse duty cycle starting near the end of
                // the window) still gets its guaranteed discovery flow:
                // treat the onset hour itself as the single active hour.
                if total <= 0.0
                    && a.guarantee_onset_flow
                    && a.budget > 0.0
                    && a.onset <= hours
                    && a.onset <= a.retire
                {
                    first = Some(a.onset);
                }
                ActorSchedule {
                    total_weight: total,
                    first_active: first,
                }
            })
            .collect();
        Scenario {
            telescope,
            seed,
            actors,
            schedules,
        }
    }

    /// The bound telescope configuration.
    pub fn telescope(&self) -> &TelescopeConfig {
        &self.telescope
    }

    /// The actor population.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expected total packets over the window (sum of actor budgets that
    /// have at least one active interval).
    pub fn expected_total_packets(&self) -> f64 {
        self.actors
            .iter()
            .zip(&self.schedules)
            .filter(|(_, s)| s.total_weight > 0.0)
            .map(|(a, _)| a.budget)
            .sum()
    }

    /// Generate the traffic of one interval (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is outside the window.
    pub fn generate_hour(&self, interval: u32) -> HourTraffic {
        let hours = self.telescope.window.num_hours();
        assert!(
            (1..=hours).contains(&interval),
            "interval {interval} outside 1..={hours}"
        );
        let hour = self
            .telescope
            .window
            .hour_of_interval(interval)
            .expect("interval validated above");
        let mut flows = Vec::new();
        for (idx, (actor, sched)) in self.actors.iter().zip(&self.schedules).enumerate() {
            if interval < actor.onset || interval > actor.retire {
                continue;
            }
            let guarantee = actor.guarantee_onset_flow && sched.first_active == Some(interval);
            if sched.total_weight <= 0.0 {
                // Pattern silent after onset: only the guaranteed
                // discovery flow (if any) is emitted, at the onset hour.
                if guarantee && actor.budget > 0.0 {
                    let mut rng = StdRng::seed_from_u64(derive_seed(
                        self.seed,
                        idx as u64,
                        u64::from(interval),
                    ));
                    actor.emit(1, &mut rng, &self.telescope, &mut flows);
                }
                continue;
            }
            let w = actor.pattern.weight(interval, hours);
            if w <= 0.0 && !guarantee {
                continue;
            }
            let expected = actor.budget * w / sched.total_weight;
            let mut rng =
                StdRng::seed_from_u64(derive_seed(self.seed, idx as u64, u64::from(interval)));
            let mut n = expected.floor() as u64;
            if rng.gen::<f64>() < expected.fract() {
                n += 1;
            }
            if n == 0 && guarantee && actor.budget > 0.0 {
                n = 1;
            }
            actor.emit(n, &mut rng, &self.telescope, &mut flows);
        }
        HourTraffic {
            interval,
            hour,
            flows,
        }
    }

    /// Generate every hour of the window, in parallel across threads.
    pub fn generate(&self) -> Vec<HourTraffic> {
        let hours = self.telescope.window.num_hours();
        let intervals: Vec<u32> = (1..=hours).collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
            .min(intervals.len().max(1));
        let mut results: Vec<Option<HourTraffic>> = Vec::new();
        results.resize_with(intervals.len(), || None);
        let chunk = intervals.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            for (slot, ivals) in results.chunks_mut(chunk).zip(intervals.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (out, &i) in slot.iter_mut().zip(ivals) {
                        *out = Some(self.generate_hour(i));
                    }
                });
            }
        })
        .expect("generation threads do not panic");
        results
            .into_iter()
            .map(|h| h.expect("every interval generated"))
            .collect()
    }

    /// Generate and persist every hour into a [`FlowStore`].
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn write_to_store(&self, store: &FlowStore) -> Result<(), NetError> {
        for ht in self.generate() {
            store.write_hour(ht.hour, &ht.flows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ActorBehavior;
    use crate::pattern::ActivityPattern;
    use iotscope_devicedb::DeviceId;
    use std::net::Ipv4Addr;

    fn scan_actor(ip: [u8; 4], budget: f64, pattern: ActivityPattern, onset: u32) -> Actor {
        Actor {
            device: Some(DeviceId(0)),
            src_ip: Ipv4Addr::from(ip),
            behavior: ActorBehavior::TcpScan {
                ports: vec![23],
                random_port_prob: 0.0,
            },
            pattern,
            budget,
            onset,
            retire: u32::MAX,
            guarantee_onset_flow: true,
        }
    }

    fn short_scenario(actors: Vec<Actor>) -> Scenario {
        Scenario::new(TelescopeConfig::short(10), 99, actors)
    }

    #[test]
    fn budget_is_spent_in_expectation() {
        let s = short_scenario(vec![scan_actor(
            [1, 2, 3, 4],
            1000.0,
            ActivityPattern::Steady,
            1,
        )]);
        let total: u64 = s.generate().iter().map(HourTraffic::total_packets).sum();
        assert!((900..=1100).contains(&total), "total {total}");
        assert_eq!(s.expected_total_packets(), 1000.0);
    }

    #[test]
    fn onset_suppresses_early_intervals() {
        let s = short_scenario(vec![scan_actor(
            [1, 2, 3, 4],
            500.0,
            ActivityPattern::Steady,
            6,
        )]);
        for i in 1..=5 {
            assert!(s.generate_hour(i).flows.is_empty(), "interval {i}");
        }
        let total: u64 = (6..=10).map(|i| s.generate_hour(i).total_packets()).sum();
        assert!((420..=580).contains(&total), "total {total}");
    }

    #[test]
    fn onset_guarantee_emits_at_least_one_flow() {
        // Budget so small the probabilistic draw would almost surely be 0.
        let s = short_scenario(vec![scan_actor(
            [9, 9, 9, 9],
            0.001,
            ActivityPattern::Steady,
            4,
        )]);
        let h = s.generate_hour(4);
        assert!(
            !h.flows.is_empty(),
            "onset interval must carry the guaranteed discovery flow"
        );
    }

    #[test]
    fn zero_budget_actor_emits_nothing() {
        let s = short_scenario(vec![scan_actor(
            [9, 9, 9, 9],
            0.0,
            ActivityPattern::Steady,
            1,
        )]);
        let total: usize = s.generate().iter().map(|h| h.flows.len()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn window_pattern_confines_traffic() {
        let s = short_scenario(vec![scan_actor(
            [1, 1, 1, 1],
            300.0,
            ActivityPattern::Window { start: 3, end: 4 },
            1,
        )]);
        for ht in s.generate() {
            if (3..=4).contains(&ht.interval) {
                assert!(ht.total_packets() > 100);
            } else {
                assert_eq!(ht.total_packets(), 0, "interval {}", ht.interval);
            }
        }
    }

    #[test]
    fn generate_hour_matches_generate() {
        let s = short_scenario(vec![
            scan_actor([1, 1, 1, 1], 200.0, ActivityPattern::Steady, 1),
            scan_actor(
                [2, 2, 2, 2],
                100.0,
                ActivityPattern::Duty {
                    period: 3,
                    on_hours: 1,
                    phase: 0,
                },
                2,
            ),
        ]);
        let all = s.generate();
        for ht in &all {
            assert_eq!(*ht, s.generate_hour(ht.interval));
        }
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].interval, 1);
        assert_eq!(all[9].interval, 10);
    }

    #[test]
    fn same_seed_reproduces_different_seed_differs() {
        let actors = vec![scan_actor([1, 1, 1, 1], 500.0, ActivityPattern::Steady, 1)];
        let a = Scenario::new(TelescopeConfig::short(5), 1, actors.clone()).generate();
        let b = Scenario::new(TelescopeConfig::short(5), 1, actors.clone()).generate();
        let c = Scenario::new(TelescopeConfig::short(5), 2, actors).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_window_interval_panics() {
        let s = short_scenario(vec![]);
        let _ = s.generate_hour(11);
    }

    mod props {
        use super::*;
        use crate::pattern::ActivityPattern;
        use proptest::prelude::*;

        fn arb_pattern() -> impl Strategy<Value = ActivityPattern> {
            prop_oneof![
                Just(ActivityPattern::Steady),
                (1u32..30, 1u32..30, 0u32..30).prop_map(|(period, on, phase)| {
                    ActivityPattern::Duty {
                        period,
                        on_hours: on,
                        phase,
                    }
                }),
                (1u32..20, 0u32..20).prop_map(|(start, len)| ActivityPattern::Window {
                    start,
                    end: start + len,
                }),
                (
                    0.0f64..0.5,
                    proptest::collection::vec((1u32..20, 0.5f64..5.0), 0..4)
                )
                    .prop_map(|(baseline, spikes)| ActivityPattern::Bursts { baseline, spikes }),
                (1u32..20, 1.0f64..4.0)
                    .prop_map(|(knee, factor)| ActivityPattern::Ramp { knee, factor }),
            ]
        }

        fn arb_actor() -> impl Strategy<Value = Actor> {
            (
                any::<u32>(),
                10.0f64..2_000.0,
                arb_pattern(),
                1u32..20,
                any::<bool>(),
            )
                .prop_map(|(ip, budget, pattern, onset, guarantee)| Actor {
                    device: Some(DeviceId(0)),
                    src_ip: Ipv4Addr::from(ip | 0x0100_0000), // never 0.x
                    behavior: ActorBehavior::TcpScan {
                        ports: vec![23],
                        random_port_prob: 0.0,
                    },
                    pattern,
                    budget,
                    onset,
                    retire: u32::MAX,
                    guarantee_onset_flow: guarantee,
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For any actor population: generation is deterministic, all
            /// flows land in the dark space, and the total packet count is
            /// near the sum of schedulable budgets.
            #[test]
            fn prop_generation_invariants(actors in proptest::collection::vec(arb_actor(), 1..8)) {
                let cfg = TelescopeConfig::short(20);
                let scenario = Scenario::new(cfg, 7, actors);
                let a = scenario.generate();
                let b = scenario.generate();
                prop_assert_eq!(&a, &b);
                let total: u64 = a.iter().map(HourTraffic::total_packets).sum();
                let expected = scenario.expected_total_packets();
                for ht in &a {
                    for f in &ht.flows {
                        prop_assert!(cfg.contains(f.dst_ip));
                        prop_assert!(f.packets >= 1);
                    }
                }
                if expected > 500.0 {
                    let ratio = total as f64 / expected;
                    prop_assert!((0.7..=1.3).contains(&ratio), "ratio {} (total {} expected {})", ratio, total, expected);
                }
            }

            /// Guaranteed actors emit at least one flow; onset is honored.
            #[test]
            fn prop_onset_and_guarantee(actor in arb_actor()) {
                let mut actor = actor;
                actor.guarantee_onset_flow = true;
                let onset = actor.onset;
                let scenario = Scenario::new(TelescopeConfig::short(20), 3, vec![actor]);
                let hours = scenario.generate();
                let first_emit = hours.iter().find(|h| !h.flows.is_empty()).map(|h| h.interval);
                prop_assert!(first_emit.is_some(), "guaranteed actor never emitted");
                prop_assert!(first_emit.unwrap() >= onset.min(20));
            }
        }
    }

    #[test]
    fn write_to_store_roundtrips() {
        use iotscope_net::store::StoreOptions;
        let dir = std::env::temp_dir().join(format!("iotscope-scen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let s = short_scenario(vec![scan_actor(
            [1, 1, 1, 1],
            100.0,
            ActivityPattern::Steady,
            1,
        )]);
        s.write_to_store(&store).unwrap();
        assert_eq!(store.hours_missing(&s.telescope().window).len(), 0);
        let h1 = s.generate_hour(1);
        let mut from_disk = store.read_hour(h1.hour).unwrap();
        let mut expect = h1.flows.clone();
        let key = |f: &FlowTuple| {
            (
                u32::from(f.src_ip),
                u32::from(f.dst_ip),
                f.dst_port,
                f.src_port,
            )
        };
        from_disk.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(from_disk, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
