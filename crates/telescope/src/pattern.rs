//! Activity patterns: *when* an actor emits, as a per-interval weight.
//!
//! A pattern maps a 1-based interval index to a non-negative weight. The
//! scenario engine normalizes weights over the window so an actor's total
//! budget is spent proportionally to its pattern — changing a pattern never
//! changes how much an actor sends in total, only when.

use serde::{Deserialize, Serialize};

/// When an actor is active across the analysis window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivityPattern {
    /// Uniform weight on every interval.
    Steady,
    /// Active `on_hours` out of every `period` hours, shifted by `phase`
    /// (models devices that scan in repeated sessions, §IV-A1).
    Duty {
        /// Cycle length in hours (≥ 1).
        period: u32,
        /// Active hours at the start of each cycle (1..=period).
        on_hours: u32,
        /// Phase shift in hours.
        phase: u32,
    },
    /// Active only in `start..=end` (inclusive, 1-based intervals) — e.g.
    /// the BackroomNet scanner that appears at interval 113 (§IV-C1).
    Window {
        /// First active interval.
        start: u32,
        /// Last active interval.
        end: u32,
    },
    /// A low constant baseline plus sharp bursts at specific intervals —
    /// DoS attack episodes (Fig 7) and the SSH scan bursts at intervals
    /// 32/69 (Fig 10).
    Bursts {
        /// Baseline weight applied to every interval.
        baseline: f64,
        /// `(interval, weight)` spikes added on top of the baseline.
        spikes: Vec<(u32, f64)>,
    },
    /// Weight 1 before `knee`, then linearly ramping to `factor` at the end
    /// of the window — the HTTP scan growth after interval 92 (Fig 10).
    Ramp {
        /// Interval where the ramp starts.
        knee: u32,
        /// Weight multiplier reached at the final interval (≥ 1).
        factor: f64,
    },
}

impl ActivityPattern {
    /// The unnormalized weight of `interval` (1-based) in a window of
    /// `num_hours` intervals.
    pub fn weight(&self, interval: u32, num_hours: u32) -> f64 {
        debug_assert!(interval >= 1);
        match self {
            ActivityPattern::Steady => 1.0,
            ActivityPattern::Duty {
                period,
                on_hours,
                phase,
            } => {
                let period = (*period).max(1);
                let pos = (interval - 1 + phase) % period;
                if pos < (*on_hours).min(period) {
                    1.0
                } else {
                    0.0
                }
            }
            ActivityPattern::Window { start, end } => {
                if interval >= *start && interval <= *end {
                    1.0
                } else {
                    0.0
                }
            }
            ActivityPattern::Bursts { baseline, spikes } => {
                let spike: f64 = spikes
                    .iter()
                    .filter(|(i, _)| *i == interval)
                    .map(|(_, w)| *w)
                    .sum();
                baseline.max(0.0) + spike
            }
            ActivityPattern::Ramp { knee, factor } => {
                if interval <= *knee || num_hours <= *knee {
                    1.0
                } else {
                    let t = f64::from(interval - knee) / f64::from(num_hours - knee);
                    1.0 + (factor - 1.0).max(0.0) * t
                }
            }
        }
    }

    /// Sum of weights over a window — the normalization constant.
    pub fn total_weight(&self, num_hours: u32) -> f64 {
        (1..=num_hours).map(|i| self.weight(i, num_hours)).sum()
    }

    /// The first interval with positive weight, if any.
    pub fn first_active(&self, num_hours: u32) -> Option<u32> {
        (1..=num_hours).find(|i| self.weight(*i, num_hours) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u32 = 143;

    #[test]
    fn steady_is_uniform() {
        let p = ActivityPattern::Steady;
        assert_eq!(p.weight(1, H), 1.0);
        assert_eq!(p.weight(143, H), 1.0);
        assert_eq!(p.total_weight(H), 143.0);
        assert_eq!(p.first_active(H), Some(1));
    }

    #[test]
    fn duty_cycles() {
        let p = ActivityPattern::Duty {
            period: 6,
            on_hours: 2,
            phase: 0,
        };
        assert_eq!(p.weight(1, H), 1.0);
        assert_eq!(p.weight(2, H), 1.0);
        assert_eq!(p.weight(3, H), 0.0);
        assert_eq!(p.weight(7, H), 1.0);
        // Phase shifts the cycle.
        let q = ActivityPattern::Duty {
            period: 6,
            on_hours: 2,
            phase: 3,
        };
        assert_eq!(q.weight(1, H), 0.0);
        assert_eq!(q.weight(4, H), 1.0);
    }

    #[test]
    fn duty_on_hours_capped_by_period() {
        let p = ActivityPattern::Duty {
            period: 4,
            on_hours: 99,
            phase: 0,
        };
        assert_eq!(p.total_weight(8), 8.0);
    }

    #[test]
    fn window_bounds_inclusive() {
        let p = ActivityPattern::Window {
            start: 113,
            end: 142,
        };
        assert_eq!(p.weight(112, H), 0.0);
        assert_eq!(p.weight(113, H), 1.0);
        assert_eq!(p.weight(142, H), 1.0);
        assert_eq!(p.weight(143, H), 0.0);
        assert_eq!(p.total_weight(H), 30.0);
        assert_eq!(p.first_active(H), Some(113));
    }

    #[test]
    fn bursts_add_to_baseline() {
        let p = ActivityPattern::Bursts {
            baseline: 0.1,
            spikes: vec![(6, 10.0), (7, 10.0), (6, 5.0)],
        };
        assert_eq!(p.weight(5, H), 0.1);
        assert_eq!(p.weight(6, H), 15.1);
        assert_eq!(p.weight(7, H), 10.1);
        let total = p.total_weight(H);
        assert!((total - (0.1 * 143.0 + 25.0)).abs() < 1e-9);
    }

    #[test]
    fn bursts_zero_baseline_is_silent_between_spikes() {
        let p = ActivityPattern::Bursts {
            baseline: 0.0,
            spikes: vec![(49, 1.0)],
        };
        assert_eq!(p.first_active(H), Some(49));
        assert_eq!(p.weight(50, H), 0.0);
    }

    #[test]
    fn ramp_grows_after_knee() {
        let p = ActivityPattern::Ramp {
            knee: 92,
            factor: 2.0,
        };
        assert_eq!(p.weight(1, H), 1.0);
        assert_eq!(p.weight(92, H), 1.0);
        assert!(p.weight(100, H) > 1.0);
        assert!((p.weight(143, H) - 2.0).abs() < 1e-9);
        // Monotone after the knee.
        for i in 93..H {
            assert!(p.weight(i + 1, H) >= p.weight(i, H));
        }
    }

    #[test]
    fn ramp_degenerate_window() {
        let p = ActivityPattern::Ramp {
            knee: 92,
            factor: 2.0,
        };
        assert_eq!(p.weight(5, 10), 1.0); // window shorter than knee
    }

    #[test]
    fn total_weight_matches_manual_sum() {
        let patterns = [
            ActivityPattern::Steady,
            ActivityPattern::Duty {
                period: 24,
                on_hours: 6,
                phase: 5,
            },
            ActivityPattern::Ramp {
                knee: 50,
                factor: 3.0,
            },
        ];
        for p in patterns {
            let manual: f64 = (1..=H).map(|i| p.weight(i, H)).sum();
            assert!((p.total_weight(H) - manual).abs() < 1e-9);
        }
    }
}
