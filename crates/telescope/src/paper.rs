//! The paper-calibrated scenario.
//!
//! [`PaperScenario::build`] turns a synthetic inventory into the actor
//! population whose aggregate traffic reproduces the published shapes:
//!
//! * §IV-C / Table V / Fig 10 — TCP scanning: Telnet ≈50% of packets, the
//!   heavy-hitter structure (7 devices driving 55% of Telnet, the SSH
//!   bursts at intervals 32/69, the single BackroomNet scanner appearing at
//!   interval 113, the steady CWMP scanners, the HTTP ramp after 92);
//! * §IV-A / Table IV / Fig 5 — UDP: broad sprayers favoring the
//!   Netcore-backdoor ports, dedicated per-port scanner groups;
//! * §IV-B / Figs 6–8 — backscatter: the 839-victim population with its
//!   long-tail packet distribution and the named DoS spike schedule;
//! * Fig 2 — the staggered onset curve (≈46% of devices discovered on day
//!   one);
//! * Fig 9b — the interval-119 port sweep (10,249 ports on 55 hosts).
//!
//! Packet budgets are the paper's per-device magnitudes multiplied by
//! `scale`; device counts are proportional to the designated population,
//! so scaled-down runs keep every relative shape.

use crate::behavior::{Actor, ActorBehavior};
use crate::config::TelescopeConfig;
use crate::ground_truth::{GroundTruth, Role};
use crate::pattern::ActivityPattern;
use crate::scenario::Scenario;
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig, SynthOutput};
use iotscope_devicedb::{ConsumerKind, CpsService, DeviceId, DeviceProfile, IotDevice, Realm};
use iotscope_net::ports::ScanService;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a calibrated run.
#[derive(Debug, Clone)]
pub struct PaperScenarioConfig {
    /// Master seed for inventory, role assignment and traffic.
    pub seed: u64,
    /// Packet-budget multiplier relative to the paper's magnitudes
    /// (1.0 ⇒ ≈1.2×10⁸ packets; the default CLI uses 0.01).
    pub scale: f64,
    /// Inventory sizes.
    pub synth: SynthConfig,
    /// Number of non-IoT misconfiguration/noise sources (their traffic
    /// must be filtered out by correlation).
    pub noise_sources: u32,
    /// Number of *unindexed* IoT devices to plant: sources that behave
    /// like compromised IoT scanners but are absent from the inventory
    /// (the target population of the §VI fuzzy-fingerprinting follow-up).
    pub shadow_iot: u32,
    /// Number of coordinated botnets to plant among the designated
    /// scanners (each with 5-9 members sharing rare ports and a
    /// synchronized schedule; the §VII clustering target).
    pub coordinated_botnets: u32,
}

impl PaperScenarioConfig {
    /// Full paper-sized populations at the given packet scale.
    pub fn paper(seed: u64, scale: f64) -> Self {
        PaperScenarioConfig {
            seed,
            scale,
            synth: SynthConfig::paper(seed),
            noise_sources: 400,
            shadow_iot: 60,
            coordinated_botnets: 4,
        }
    }

    /// A small, fast configuration for tests and examples (~5.5k devices,
    /// ~1k designated, ~10⁵ packets).
    pub fn tiny(seed: u64) -> Self {
        PaperScenarioConfig {
            seed,
            scale: 0.008,
            synth: SynthConfig::small(seed),
            noise_sources: 40,
            shadow_iot: 12,
            coordinated_botnets: 2,
        }
    }
}

/// Everything `build` produces: the generator, the inventory it runs over,
/// and the ground-truth ledger for validation.
#[derive(Debug)]
pub struct BuiltScenario {
    /// The traffic generator.
    pub scenario: Scenario,
    /// The inventory (device DB + ISP registry + designation lists).
    pub inventory: SynthOutput,
    /// What was planted.
    pub truth: GroundTruth,
}

/// Builder entry point (stateless; see [`PaperScenario::build`]).
#[derive(Debug, Clone, Copy)]
pub struct PaperScenario;

// ---------------------------------------------------------------------------
// Calibration constants (unscaled, paper magnitudes).
// ---------------------------------------------------------------------------

/// Total TCP scanning packets (§IV-C: "slightly over 100M").
const TCP_SCAN_TOTAL: f64 = 100.0e6;
/// Total UDP packets (§IV-A: ≈13M).
const UDP_TOTAL: f64 = 13.0e6;
/// UDP consumer share (§IV-A1: 63%).
const UDP_CONSUMER_FRAC: f64 = 0.63;
/// Total ICMP scanning packets (§IV-C: 0.23% of traffic, ≈0.33M).
const ICMP_SCAN_TOTAL: f64 = 0.33e6;
/// ICMP scanning consumer share (§IV-C: 93%).
const ICMP_CONSUMER_FRAC: f64 = 0.93;

/// Paper population sizes used to derive role *fractions*.
const PAPER_CONSUMER_DESIGNATED: f64 = 15_299.0;
const PAPER_CPS_DESIGNATED: f64 = 11_582.0;
const PAPER_CONSUMER_VICTIMS: f64 = 394.0;
const PAPER_CPS_VICTIMS: f64 = 445.0;
const PAPER_CONSUMER_TCP_SCANNERS: f64 = 6_800.0;
const PAPER_CPS_TCP_SCANNERS: f64 = 5_563.0;
const PAPER_CONSUMER_ICMP: f64 = 32.0;
const PAPER_CPS_ICMP: f64 = 24.0;
/// §IV-A1: 25,242 UDP devices, 60% consumer ⇒ effectively every non-victim
/// consumer device and ~91% of non-victim CPS devices.
const CPS_UDP_FRAC: f64 = 0.906;

/// Table V calibration: `(service, packet share of TCP scan total,
/// consumer packet fraction, consumer devices, cps devices)` at paper
/// scale.
const SERVICE_TABLE: [(ScanService, f64, f64, f64, f64); 14] = [
    (ScanService::Telnet, 0.502, 0.634, 643.0, 553.0),
    (ScanService::Http, 0.094, 0.945, 1418.0, 345.0),
    (ScanService::Ssh, 0.077, 0.337, 64.0, 80.0),
    (ScanService::BackroomNet, 0.062, 0.0, 0.0, 1.0),
    (ScanService::Cwmp, 0.045, 0.448, 169.0, 244.0),
    (ScanService::WsdapiS, 0.041, 0.59, 94.0, 48.0),
    (ScanService::MsSqlServer, 0.033, 0.362, 8.0, 13.0),
    (ScanService::Kerberos, 0.027, 0.99, 1061.0, 23.0),
    (ScanService::MsDs, 0.025, 0.453, 43.0, 330.0),
    (ScanService::EthernetIpIo, 0.007, 0.416, 50.0, 65.0),
    (ScanService::Irdmi, 0.007, 0.985, 1055.0, 18.0),
    (ScanService::Unassigned21677, 0.006, 0.0, 1.0, 87.0),
    (ScanService::Rdp, 0.005, 0.468, 42.0, 61.0),
    (ScanService::Ftp, 0.003, 0.46, 20.0, 33.0),
];
/// Packets outside the 14 named services (Table V footnote: CP = 93.3%).
const OTHER_SCAN_SHARE: f64 = 0.066;

/// Table IV dedicated UDP port-scanner groups: `(port, packets, devices,
/// consumer fraction of the group)`.
const UDP_DEDICATED: [(u16, f64, f64, f64); 7] = [
    (137, 268_000.0, 144.0, 0.6),
    (53413, 267_000.0, 91.0, 0.5),
    (5353, 99_000.0, 165.0, 0.7),
    (4605, 50_000.0, 150.0, 0.5),
    (53, 43_000.0, 158.0, 0.6),
    (3544, 34_000.0, 226.0, 0.6),
    (1194, 34_000.0, 96.0, 0.5),
];

/// The favored ports of broad UDP sprayers (Table IV's 9–10k-device
/// Netcore-backdoor family) with their relative weights.
const SPRAY_FAVORED: [(u16, f64); 3] = [(37547, 2.5), (32124, 1.1), (28183, 0.95)];

impl PaperScenario {
    /// Build the calibrated scenario.
    pub fn build(config: PaperScenarioConfig) -> BuiltScenario {
        let inventory = InventoryBuilder::new(config.synth.clone()).build();
        Self::build_with_inventory(config, inventory)
    }

    /// Build over an already-generated inventory (useful when the caller
    /// also needs the inventory elsewhere).
    pub fn build_with_inventory(
        config: PaperScenarioConfig,
        inventory: SynthOutput,
    ) -> BuiltScenario {
        let telescope = TelescopeConfig::paper();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB0A7_5EED);
        let mut truth = GroundTruth::new();
        let mut actors: Vec<Actor> = Vec::new();
        let scale = config.scale;
        let hours = telescope.window.num_hours();

        let mut consumer_pool = inventory.designated_consumer.clone();
        let mut cps_pool = inventory.designated_cps.clone();
        consumer_pool.shuffle(&mut rng);
        cps_pool.shuffle(&mut rng);

        let c_ratio = consumer_pool.len() as f64 / PAPER_CONSUMER_DESIGNATED;
        let x_ratio = cps_pool.len() as f64 / PAPER_CPS_DESIGNATED;

        // ------------------------------------------------------------------
        // 1. DoS victims (exclusive role).
        // ------------------------------------------------------------------
        let nv_c = scaled_count(PAPER_CONSUMER_VICTIMS, c_ratio);
        let nv_x = scaled_count(PAPER_CPS_VICTIMS, x_ratio);
        // Fig 8a: victim geography is *not* proportional to the compromised
        // population — Singapore/Indonesia lead consumer victims, China/US
        // lead CPS victims, while Russia (heavy on scanners) hosts few.
        let consumer_victims = take_biased(
            &mut consumer_pool,
            &inventory.db,
            nv_c,
            &mut rng,
            |d| match d.country.code() {
                "SG" => 10.0,
                "ID" => 7.0,
                "CN" => 2.0,
                "NL" | "GB" => 2.0,
                "US" => 1.5,
                "RU" => 0.25,
                _ => 1.0,
            },
        );
        let cps_victims = take_biased(&mut cps_pool, &inventory.db, nv_x, &mut rng, |d| {
            match d.country.code() {
                "CN" => 2.5,
                "US" => 2.3,
                "CH" => 1.5,
                "KR" | "TW" => 1.2,
                "RU" => 0.3,
                _ => 1.0,
            }
        });
        Self::plant_backscatter(
            &mut actors,
            &mut truth,
            &mut rng,
            &inventory,
            &consumer_victims,
            &cps_victims,
            scale,
        );

        // ------------------------------------------------------------------
        // 2. Onset days for the remaining (actively compromised) devices.
        // ------------------------------------------------------------------
        let mut onsets: std::collections::HashMap<DeviceId, u32> = std::collections::HashMap::new();
        for id in consumer_pool.iter().chain(cps_pool.iter()) {
            onsets.insert(*id, draw_onset(&mut rng, hours));
        }

        // ------------------------------------------------------------------
        // 3. TCP scanners per Table V.
        // ------------------------------------------------------------------
        let ns_c = scaled_count(PAPER_CONSUMER_TCP_SCANNERS, c_ratio).min(consumer_pool.len());
        let ns_x = scaled_count(PAPER_CPS_TCP_SCANNERS, x_ratio).min(cps_pool.len());
        let tcp_consumer: Vec<DeviceId> = consumer_pool[..ns_c].to_vec();
        let tcp_cps: Vec<DeviceId> = cps_pool[..ns_x].to_vec();
        Self::plant_tcp_scanners(
            &mut actors,
            &mut truth,
            &mut rng,
            &inventory,
            &tcp_consumer,
            &tcp_cps,
            &onsets,
            scale,
            c_ratio,
            x_ratio,
        );

        // ------------------------------------------------------------------
        // 4. ICMP scanners.
        // ------------------------------------------------------------------
        let ni_c = scaled_count(PAPER_CONSUMER_ICMP, c_ratio)
            .max(1)
            .min(consumer_pool.len());
        let ni_x = scaled_count(PAPER_CPS_ICMP, x_ratio)
            .max(1)
            .min(cps_pool.len());
        for (ids, total_frac, n_paper) in [
            (
                &consumer_pool[..ni_c],
                ICMP_CONSUMER_FRAC,
                PAPER_CONSUMER_ICMP,
            ),
            (&cps_pool[..ni_x], 1.0 - ICMP_CONSUMER_FRAC, PAPER_CPS_ICMP),
        ] {
            let per_device = ICMP_SCAN_TOTAL * total_frac / n_paper;
            for id in ids {
                let dev = inventory.db.device(*id);
                let onset = onsets[id];
                truth.add_role(*id, Role::IcmpScanner);
                truth.record_onset(*id, onset);
                let retire = draw_retire(&mut rng, onset);
                actors.push(Actor {
                    device: Some(*id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::IcmpScan,
                    pattern: ActivityPattern::Duty {
                        period: rng.gen_range(10..30),
                        on_hours: rng.gen_range(2..8),
                        phase: rng.gen_range(0..30),
                    },
                    budget: rate_based(
                        per_device * lognormal_factor(&mut rng, 0.8) * scale,
                        onset,
                        retire,
                        hours,
                    ),
                    onset,
                    retire,
                    guarantee_onset_flow: true,
                });
            }
        }

        // ------------------------------------------------------------------
        // 5. UDP actors (spray + dedicated groups).
        // ------------------------------------------------------------------
        Self::plant_udp(
            &mut actors,
            &mut truth,
            &mut rng,
            &inventory,
            &consumer_pool,
            &cps_pool,
            &onsets,
            scale,
            c_ratio,
            x_ratio,
        );

        // ------------------------------------------------------------------
        // 6. The interval-119 port sweep from an IP camera (Fig 9b).
        // ------------------------------------------------------------------
        if let Some(cam) = pick_preferred(
            &tcp_consumer,
            &inventory.db,
            &[
                &|d: &IotDevice| {
                    d.country.code() == "DO"
                        && d.profile.consumer_kind() == Some(ConsumerKind::IpCamera)
                },
                &|d: &IotDevice| d.profile.consumer_kind() == Some(ConsumerKind::IpCamera),
                &|_d: &IotDevice| true,
            ],
        ) {
            let dev = inventory.db.device(cam);
            truth.add_role(cam, Role::TcpScanner);
            truth.record_onset(cam, 119);
            actors.push(Actor {
                device: Some(cam),
                src_ip: dev.ip,
                behavior: ActorBehavior::PortSweep {
                    dst_count: 55,
                    port_count: 10_249,
                },
                pattern: ActivityPattern::Bursts {
                    baseline: 0.0,
                    spikes: vec![(119, 1.0)],
                },
                // The sweep is a single fixed-size event; it is not scaled
                // so the Fig 9b port spike survives scaled-down runs.
                budget: 10_249.0,
                onset: 1,
                retire: u32::MAX,
                guarantee_onset_flow: false,
            });
        }

        // ------------------------------------------------------------------
        // 7. Unindexed (shadow) IoT devices: IoT-like scanners outside the
        //    inventory, for the SVI fingerprinting follow-up.
        // ------------------------------------------------------------------
        for i in 0..config.shadow_iot {
            let src = std::net::Ipv4Addr::new(198, 51, (i / 200) as u8, (i % 200) as u8 + 1);
            truth.shadow_iot.push(src);
            let service = [
                ScanService::Telnet,
                ScanService::Cwmp,
                ScanService::Http,
                ScanService::Irdmi,
            ][rng.gen_range(0..4)];
            actors.push(Actor {
                device: None,
                src_ip: src,
                behavior: ActorBehavior::TcpScan {
                    ports: service.ports().to_vec(),
                    random_port_prob: 0.0,
                },
                pattern: ActivityPattern::Duty {
                    period: rng.gen_range(6..24),
                    on_hours: rng.gen_range(2..8),
                    phase: rng.gen_range(0..24),
                },
                budget: rng.gen_range(3_000.0..20_000.0) * scale,
                onset: draw_onset(&mut rng, hours),
                retire: u32::MAX,
                guarantee_onset_flow: true,
            });
        }

        // ------------------------------------------------------------------
        // 8. Coordinated botnets: small crews of designated devices that
        //    scan the same rare ports on a synchronized schedule (SVII).
        // ------------------------------------------------------------------
        for b in 0..config.coordinated_botnets {
            let size = rng.gen_range(5..=9usize).min(consumer_pool.len());
            if size < 3 {
                break;
            }
            // Members come from the *back* of the pool (UDP-only devices
            // without service-scanner roles) so the crew's scanned-port
            // signature is exactly the planted rare ports.
            let end = consumer_pool.len().saturating_sub(b as usize * 10);
            let start = end.saturating_sub(size);
            let members: Vec<DeviceId> = consumer_pool[start..end].to_vec();
            if members.len() < 3 {
                break;
            }
            // Two rare signature ports well outside the named service
            // groups, plus one synchronized duty schedule for the crew.
            let p1: u16 = rng.gen_range(20_000..60_000);
            let p2: u16 = rng.gen_range(20_000..60_000);
            let pattern = ActivityPattern::Duty {
                period: rng.gen_range(10..20),
                on_hours: rng.gen_range(2..5),
                phase: rng.gen_range(0..20),
            };
            for id in &members {
                let dev = inventory.db.device(*id);
                truth.add_role(*id, Role::TcpScanner);
                truth.record_onset(*id, 1);
                actors.push(Actor {
                    device: Some(*id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::TcpScan {
                        ports: vec![p1, p2],
                        random_port_prob: 0.0,
                    },
                    pattern: pattern.clone(),
                    budget: rng.gen_range(8_000.0..15_000.0) * scale,
                    onset: 1,
                    retire: u32::MAX,
                    guarantee_onset_flow: true,
                });
            }
            truth.botnets.push(members);
        }

        // ------------------------------------------------------------------
        // 9. Non-IoT noise (must be filtered out by correlation).
        // ------------------------------------------------------------------
        for i in 0..config.noise_sources {
            let src = std::net::Ipv4Addr::new(198, 18 + (i % 2) as u8, rng.gen(), rng.gen());
            let behavior = if rng.gen::<f64>() < 0.5 {
                ActorBehavior::Misconfig
            } else {
                ActorBehavior::TcpScan {
                    // PC-malware style targets (IRC C2, classic backdoor
                    // ports) that IoT scanners never touch, so the
                    // fingerprinting follow-up has a contrast class.
                    ports: vec![6667, 31337, 12345],
                    random_port_prob: 0.02,
                }
            };
            actors.push(Actor {
                device: None,
                src_ip: src,
                behavior,
                pattern: ActivityPattern::Steady,
                budget: rng.gen_range(100.0..5_000.0) * scale,
                onset: 1,
                retire: u32::MAX,
                guarantee_onset_flow: false,
            });
        }

        let scenario = Scenario::new(telescope, config.seed, actors);
        BuiltScenario {
            scenario,
            inventory,
            truth,
        }
    }

    // ----------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn plant_tcp_scanners(
        actors: &mut Vec<Actor>,
        truth: &mut GroundTruth,
        rng: &mut StdRng,
        inventory: &SynthOutput,
        consumer: &[DeviceId],
        cps: &[DeviceId],
        onsets: &std::collections::HashMap<DeviceId, u32>,
        scale: f64,
        c_ratio: f64,
        x_ratio: f64,
    ) {
        let mut c_rest: Vec<DeviceId> = consumer.to_vec();
        let mut x_rest: Vec<DeviceId> = cps.to_vec();

        for (service, pkt_share, consumer_frac, c_devs, x_devs) in SERVICE_TABLE {
            let n_c = scaled_count(c_devs, c_ratio).min(c_rest.len());
            let n_x = scaled_count(x_devs, x_ratio).min(x_rest.len());
            // BackroomNet and Unassigned/21677 keep at least their single
            // CPS scanner at any scale.
            let n_x = if x_devs >= 1.0 && n_x == 0 && !x_rest.is_empty() {
                1
            } else {
                n_x
            };
            let c_ids: Vec<DeviceId> = c_rest.drain(..n_c).collect();
            let x_ids: Vec<DeviceId> = x_rest.drain(..n_x).collect();
            let budget = TCP_SCAN_TOTAL * pkt_share;
            Self::plant_service(
                actors,
                truth,
                rng,
                inventory,
                service,
                budget * consumer_frac,
                &c_ids,
                Realm::Consumer,
                onsets,
                scale,
            );
            Self::plant_service(
                actors,
                truth,
                rng,
                inventory,
                service,
                budget * (1.0 - consumer_frac),
                &x_ids,
                Realm::Cps,
                onsets,
                scale,
            );
        }

        // The "other ports" tail: each scanner sweeps its own small random
        // port set on a sparse duty cycle; this is what sets the hourly
        // distinct-port counts of Fig 9 (CPS ≈576/hr vs consumer ≈246/hr).
        let other_budget = TCP_SCAN_TOTAL * OTHER_SCAN_SHARE;
        // CPS tails get the bulk of the unnamed-port budget and sweep wider
        // port sets in shorter, denser sessions — this is what puts CPS
        // hourly distinct ports well above consumer in Fig 9 (576 vs 246
        // per hour).
        let c_other = (other_budget * 0.30 / c_rest.len().max(1) as f64, c_rest);
        let x_other = (other_budget * 0.70 / x_rest.len().max(1) as f64, x_rest);
        for ((per_device, ids), duty_on, port_range) in
            [(c_other, 6..12u32, 1..=3u16), (x_other, 2..6u32, 8..=25u16)]
        {
            for id in ids {
                let dev = inventory.db.device(id);
                let onset = onsets[&id];
                truth.add_role(id, Role::TcpScanner);
                truth.record_onset(id, onset);
                let retire = draw_retire(rng, onset);
                let n_ports = rng.gen_range(port_range.clone());
                let ports: Vec<u16> = (0..n_ports).map(|_| rng.gen()).collect();
                actors.push(Actor {
                    device: Some(id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::TcpScan {
                        ports,
                        random_port_prob: 0.0,
                    },
                    pattern: ActivityPattern::Duty {
                        period: rng.gen_range(100..160),
                        on_hours: rng.gen_range(duty_on.clone()),
                        phase: rng.gen_range(0..160),
                    },
                    budget: rate_based(
                        per_device * lognormal_factor(rng, 1.0) * scale,
                        onset,
                        retire,
                        143,
                    ),
                    onset,
                    retire,
                    guarantee_onset_flow: true,
                });
            }
        }
    }

    /// Plant the scanners of one Table V service for one realm.
    #[allow(clippy::too_many_arguments)]
    fn plant_service(
        actors: &mut Vec<Actor>,
        truth: &mut GroundTruth,
        rng: &mut StdRng,
        inventory: &SynthOutput,
        service: ScanService,
        budget: f64,
        ids: &[DeviceId],
        realm: Realm,
        onsets: &std::collections::HashMap<DeviceId, u32>,
        scale: f64,
    ) {
        if ids.is_empty() || budget <= 0.0 {
            return;
        }
        // Heavy-hitter structure and special patterns per service. After
        // `concentrate`, indices < heavy_k are the planted heavy hitters.
        let mut shares = lognormal_shares(
            rng,
            ids.len(),
            if realm == Realm::Consumer { 1.8 } else { 1.1 },
        );
        let heavy_k = match service {
            ScanService::Telnet if realm == Realm::Consumer => {
                // §IV-C1: 7 devices contribute 55% of all Telnet packets.
                // Consumer carries 63.4% of Telnet, so its heavy subset
                // gets 55%/0.634 of the consumer share, concentrated on up
                // to 5 consumer heavies (the other 2 are CPS).
                let k = 5.min(ids.len());
                concentrate(&mut shares, k, 0.70);
                k
            }
            ScanService::Telnet => {
                let k = 2.min(ids.len());
                concentrate(&mut shares, k, 0.45);
                k
            }
            ScanService::Ssh if realm == Realm::Consumer => {
                // §IV-C1: two exploited routers (Russia/Australia) join
                // the interval-32/69 burst crew.
                let k = 2.min(ids.len());
                concentrate(&mut shares, k, 0.069);
                k
            }
            ScanService::Ssh => {
                // …together with three CPS devices (two China, one
                // Brazil) that generate ~80-90% of those bursts.
                let k = 3.min(ids.len());
                concentrate(&mut shares, k, 0.052);
                k
            }
            ScanService::BackroomNet => {
                // The single BACnet device is a planted long-running event
                // (continuous from interval 113); it must not churn or be
                // rate-rescaled, or its 6.2% share drifts with the seed.
                ids.len()
            }
            ScanService::Cwmp if realm == Realm::Consumer => {
                // One exploited Australian router generates 10.6%.
                concentrate(&mut shares, 1, 0.24);
                1
            }
            ScanService::Cwmp => {
                // Five CPS devices generate ~25% of all CWMP scans.
                let k = 5.min(ids.len());
                concentrate(&mut shares, k, 0.45);
                k
            }
            ScanService::Http => {
                // Fig 10: HTTP's gradual growth after interval 92. The
                // ramp must be carried by scanners that survive to the
                // end of the window — churning actors retire before the
                // knee pays off and rate-based budgets flatten whatever
                // remains, which is why a ramp spread over the long tail
                // produces no aggregate growth. Plant a persistent
                // cohort (~40% of devices, 45% of the service's packets)
                // that holds the ramp.
                let k = (ids.len() * 2 / 5).max(1).min(ids.len());
                concentrate(&mut shares, k, 0.45);
                k
            }
            _ => 0,
        };

        let random_port_prob = if realm == Realm::Cps { 0.0005 } else { 0.0 };
        for (i, id) in ids.iter().enumerate() {
            let dev = inventory.db.device(*id);
            let mut onset = onsets[id];
            let heavy = i < heavy_k;
            let retire = if heavy {
                u32::MAX
            } else {
                draw_retire(rng, onsets[id])
            };
            if heavy {
                // Heavy hitters are long-running infections present from
                // the first interval; their high-amplitude schedules are
                // what decouple hourly packets from the growing device
                // count (§IV-C: r ≈ 0).
                onset = 1;
            }
            let pattern = match service {
                ScanService::Ssh if heavy => {
                    onset = 1;
                    ActivityPattern::Bursts {
                        baseline: 0.02,
                        spikes: vec![(32, 10.0), (69, 10.5)],
                    }
                }
                ScanService::Telnet if heavy => ActivityPattern::Duty {
                    period: rng.gen_range(5..10),
                    on_hours: rng.gen_range(2..5),
                    phase: rng.gen_range(0..10),
                },
                ScanService::BackroomNet => {
                    // §IV-C1: starts at interval 113, runs ~30 hours.
                    onset = 1;
                    ActivityPattern::Window {
                        start: 113,
                        end: 142,
                    }
                }
                ScanService::Http if heavy => {
                    // The gradual post-92 growth of Fig 10, held by the
                    // persistent cohort so it survives to the window end.
                    ActivityPattern::Ramp {
                        knee: 92,
                        factor: 4.0,
                    }
                }
                ScanService::Http => ActivityPattern::Duty {
                    period: rng.gen_range(4..9),
                    on_hours: rng.gen_range(1..3),
                    phase: rng.gen_range(0..9),
                },
                ScanService::Cwmp => ActivityPattern::Steady,
                _ => {
                    if rng.gen::<f64>() < 0.5 {
                        ActivityPattern::Steady
                    } else {
                        ActivityPattern::Duty {
                            period: rng.gen_range(6..24),
                            on_hours: rng.gen_range(2..8),
                            phase: rng.gen_range(0..24),
                        }
                    }
                }
            };
            truth.add_role(*id, Role::TcpScanner);
            truth.record_onset(*id, onset);
            actors.push(Actor {
                device: Some(*id),
                src_ip: dev.ip,
                behavior: ActorBehavior::TcpScan {
                    ports: service.ports().to_vec(),
                    random_port_prob,
                },
                pattern,
                // Heavy hitters persist through the whole window; the
                // long tail churns with rate-based budgets.
                budget: if heavy {
                    budget * shares[i] * scale
                } else {
                    rate_based(budget * shares[i] * scale, onset, retire, 143)
                },
                onset,
                retire,
                guarantee_onset_flow: true,
            });
        }
    }

    // ----------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn plant_udp(
        actors: &mut Vec<Actor>,
        truth: &mut GroundTruth,
        rng: &mut StdRng,
        inventory: &SynthOutput,
        consumer_pool: &[DeviceId],
        cps_pool: &[DeviceId],
        onsets: &std::collections::HashMap<DeviceId, u32>,
        scale: f64,
        c_ratio: f64,
        x_ratio: f64,
    ) {
        let n_cps_udp = ((cps_pool.len() as f64) * CPS_UDP_FRAC) as usize;
        let mut c_udp: Vec<DeviceId> = consumer_pool.to_vec();
        // UDP actors are taken from the *back* of the shuffled pool while
        // TCP scanners come from the front; together they cover every
        // designated CPS device (all 26,881 devices were observed at the
        // telescope) while keeping the §IV-A device counts.
        let start = cps_pool.len().saturating_sub(n_cps_udp);
        let mut x_udp: Vec<DeviceId> = cps_pool[start..].to_vec();

        // Dedicated per-port scanner groups (Table IV rows with assigned
        // or low-device-count ports).
        for (port, packets, devices, consumer_frac) in UDP_DEDICATED {
            let n_c = scaled_count(devices * consumer_frac, c_ratio).min(c_udp.len());
            let n_x = scaled_count(devices * (1.0 - consumer_frac), x_ratio).min(x_udp.len());
            let group: Vec<DeviceId> = c_udp.drain(..n_c).chain(x_udp.drain(..n_x)).collect();
            if group.is_empty() {
                continue;
            }
            let per_device = packets / (devices.max(1.0));
            for id in group {
                let dev = inventory.db.device(id);
                let onset = onsets[&id];
                let retire = draw_retire(rng, onset);
                let b = rate_based(
                    per_device * lognormal_factor(rng, 0.9) * scale,
                    onset,
                    retire,
                    143,
                );
                truth.add_role(id, Role::UdpActor);
                truth.record_onset(id, onset);
                actors.push(Actor {
                    device: Some(id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::UdpPortScan {
                        port,
                        pkts_per_flow: rng.gen_range(1..=3),
                    },
                    pattern: ActivityPattern::Duty {
                        period: rng.gen_range(8..30),
                        on_hours: rng.gen_range(2..8),
                        phase: rng.gen_range(0..30),
                    },
                    budget: b,
                    onset,
                    retire,
                    guarantee_onset_flow: true,
                });
            }
        }
        // Broad sprayers: the rest of the UDP population.
        let spray_budget_c = UDP_TOTAL * UDP_CONSUMER_FRAC - 480_000.0 * c_ratio.min(1.0);
        let spray_budget_x = UDP_TOTAL * (1.0 - UDP_CONSUMER_FRAC) - 315_000.0 * x_ratio.min(1.0);
        let per_c = spray_budget_c.max(0.0) / (PAPER_CONSUMER_DESIGNATED * 0.95);
        let per_x = spray_budget_x.max(0.0) / (PAPER_CPS_DESIGNATED * 0.85);
        for (ids, per_device, realm) in
            [(c_udp, per_c, Realm::Consumer), (x_udp, per_x, Realm::Cps)]
        {
            for id in ids {
                let dev = inventory.db.device(id);
                let onset = onsets[&id];
                truth.add_role(id, Role::UdpActor);
                truth.record_onset(id, onset);
                let (pattern, pkts_per_flow, favored_prob) = match realm {
                    // §IV-A1: consumer sprayers run long repeated sessions,
                    // ≈1 packet per destination.
                    Realm::Consumer => (
                        ActivityPattern::Duty {
                            period: rng.gen_range(20..40),
                            on_hours: rng.gen_range(6..14),
                            phase: rng.gen_range(0..40),
                        },
                        1,
                        0.05,
                    ),
                    // CPS sprayers: shorter, denser sessions with several
                    // packets per destination (Fig 5a's port spikes).
                    Realm::Cps => (
                        ActivityPattern::Duty {
                            period: rng.gen_range(12..24),
                            on_hours: rng.gen_range(1..4),
                            phase: rng.gen_range(0..24),
                        },
                        rng.gen_range(2..=4),
                        0.03,
                    ),
                };
                // Consumer per-device totals are long-tailed (stealthy
                // majority), CPS tighter and higher — the split behind
                // §IV's "CPS devices generate significantly more packets"
                // Mann-Whitney result.
                let sigma = if realm == Realm::Consumer { 1.4 } else { 0.7 };
                let retire = draw_retire(rng, onset);
                actors.push(Actor {
                    device: Some(id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::UdpSpray {
                        favored: SPRAY_FAVORED.to_vec(),
                        favored_prob,
                        pkts_per_flow,
                    },
                    pattern,
                    budget: rate_based(
                        per_device * lognormal_factor(rng, sigma) * scale,
                        onset,
                        retire,
                        143,
                    ),
                    onset,
                    retire,
                    guarantee_onset_flow: true,
                });
            }
        }
    }

    // ----------------------------------------------------------------------
    #[allow(clippy::too_many_arguments)]
    fn plant_backscatter(
        actors: &mut Vec<Actor>,
        truth: &mut GroundTruth,
        rng: &mut StdRng,
        inventory: &SynthOutput,
        consumer_victims: &[DeviceId],
        cps_victims: &[DeviceId],
        scale: f64,
    ) {
        // Named spike schedule (§IV-B1): (CPS?, preferred country,
        // preferred service, budget, spikes).
        struct SpikeSpec {
            cps: bool,
            country: &'static str,
            service: Option<CpsService>,
            kind: Option<ConsumerKind>,
            budget: f64,
            spikes: Vec<(u32, f64)>,
        }
        let specs = vec![
            SpikeSpec {
                cps: true,
                country: "CN",
                service: Some(CpsService::EthernetIp),
                kind: None,
                budget: 3.4e6,
                spikes: vec![
                    (6, 1.0),
                    (7, 1.0),
                    (8, 1.0),
                    (53, 1.0),
                    (54, 1.0),
                    (55, 1.0),
                    (56, 0.55),
                ],
            },
            SpikeSpec {
                cps: true,
                country: "CN",
                service: Some(CpsService::EthernetIp),
                kind: None,
                budget: 1.1e6,
                spikes: vec![(99, 1.0), (127, 1.07)],
            },
            SpikeSpec {
                cps: true,
                country: "CH",
                service: Some(CpsService::TelventOasysDna),
                kind: None,
                budget: 0.3e6,
                spikes: vec![(94, 1.0)],
            },
            SpikeSpec {
                cps: true,
                country: "KR",
                service: None,
                kind: None,
                budget: 0.25e6,
                spikes: vec![(20, 1.0), (21, 0.8)],
            },
            SpikeSpec {
                cps: true,
                country: "TW",
                service: None,
                kind: None,
                budget: 0.18e6,
                spikes: vec![(70, 1.0)],
            },
            SpikeSpec {
                cps: false,
                country: "NL",
                service: None,
                kind: Some(ConsumerKind::Printer),
                budget: 0.106e6,
                spikes: vec![(49, 1.0)],
            },
            SpikeSpec {
                cps: false,
                country: "GB",
                service: None,
                kind: Some(ConsumerKind::Printer),
                budget: 0.11e6,
                spikes: vec![(81, 1.0)],
            },
        ];

        let mut c_rest: Vec<DeviceId> = consumer_victims.to_vec();
        let mut x_rest: Vec<DeviceId> = cps_victims.to_vec();
        for spec in specs {
            let pool = if spec.cps { &mut x_rest } else { &mut c_rest };
            let country = spec.country;
            let svc = spec.service;
            let kind = spec.kind;
            let match_service = |d: &IotDevice| {
                svc.is_none_or(|s| d.profile.cps_services().is_some_and(|v| v.contains(&s)))
            };
            let match_kind =
                |d: &IotDevice| kind.is_none_or(|k| d.profile.consumer_kind() == Some(k));
            let preds: [&dyn Fn(&IotDevice) -> bool; 3] = [
                &|d: &IotDevice| d.country.code() == country && match_service(d) && match_kind(d),
                &|d: &IotDevice| match_service(d) && match_kind(d),
                &|_d: &IotDevice| true,
            ];
            let Some(id) = pick_preferred(pool, &inventory.db, &preds) else {
                continue;
            };
            pool.retain(|x| *x != id);
            let dev = inventory.db.device(id);
            let port = victim_service_port(dev, rng);
            truth.add_role(id, Role::DosVictim);
            // Victims trickle baseline backscatter from interval 1 even
            // though their attack episodes come later.
            truth.record_onset(id, 1);
            for (i, _) in &spec.spikes {
                if !truth.dos_spike_intervals.contains(i) {
                    truth.dos_spike_intervals.push(*i);
                }
            }
            actors.push(Actor {
                device: Some(id),
                src_ip: dev.ip,
                behavior: ActorBehavior::Backscatter {
                    service_port: port,
                    // Fig 4 shows a visible ICMP share of total traffic;
                    // most of it is reply-type backscatter.
                    icmp_share: 0.22,
                },
                pattern: ActivityPattern::Bursts {
                    baseline: 0.0015,
                    spikes: spec.spikes,
                },
                budget: spec.budget * scale,
                onset: 1,
                retire: u32::MAX,
                guarantee_onset_flow: true,
            });
        }

        // The long-tail victims: 50% send <170 packets total, 17% ≥ 10k
        // (Fig 6), CPS victims heavier than consumer (§IV-B's
        // Mann-Whitney); the multiplier lands the CPS packet share near
        // the paper's 73%.
        for (ids, realm_mult) in [(c_rest, 1.0), (x_rest, 1.6)] {
            for id in ids {
                let dev = inventory.db.device(id);
                let port = victim_service_port(dev, rng);
                let budget = tail_victim_budget(rng) * realm_mult * scale;
                let n_spikes = rng.gen_range(1..=3usize);
                let hours = 143u32;
                let spikes: Vec<(u32, f64)> = (0..n_spikes)
                    .map(|_| (rng.gen_range(1..=hours), rng.gen_range(0.5..1.5)))
                    .collect();
                truth.add_role(id, Role::DosVictim);
                // Baseline backscatter starts at interval 1 (see above).
                truth.record_onset(id, 1);
                actors.push(Actor {
                    device: Some(id),
                    src_ip: dev.ip,
                    behavior: ActorBehavior::Backscatter {
                        service_port: port,
                        icmp_share: 0.25,
                    },
                    pattern: ActivityPattern::Bursts {
                        baseline: 0.002,
                        spikes,
                    },
                    budget,
                    onset: 1,
                    retire: u32::MAX,
                    guarantee_onset_flow: true,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

/// Round a paper count scaled by the population ratio.
fn scaled_count(paper_count: f64, ratio: f64) -> usize {
    (paper_count * ratio).round() as usize
}

/// Draw a retirement interval: exponential lifetime with a one-day floor
/// and a mean of ~4.3 days, so the hourly active population stays roughly
/// stationary while the cumulative discovered count keeps growing.
fn draw_retire<R: Rng>(rng: &mut R, onset: u32) -> u32 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let lifetime = 24.0 - 80.0 * u.ln();
    onset.saturating_add(lifetime.min(400.0) as u32)
}

/// Mean fraction of the window a churning actor is alive (given the
/// onset and lifetime distributions above); used to renormalize
/// rate-based budgets so class totals stay calibrated.
const MEAN_ALIVE_FRACTION: f64 = 0.55;

/// Convert a whole-window budget into a *rate-based* one: an actor alive
/// for a fraction of the window emits proportionally less in total, so its
/// hourly rate does not depend on when it was infected. Without this,
/// late-onset actors compress their budgets into few hours and hourly
/// packets trend upward with the discovery curve (breaking §IV-C's r ≈ 0).
fn rate_based(budget: f64, onset: u32, retire: u32, hours: u32) -> f64 {
    let end = retire.min(hours);
    if end < onset {
        return 0.0;
    }
    let alive = f64::from(end - onset + 1) / f64::from(hours.max(1));
    budget * alive / MEAN_ALIVE_FRACTION
}

/// Take `n` devices from `pool` (removing them) by weighted sampling
/// without replacement, using exponential keys (the A-Res reservoir
/// method): element `i` gets key `u_i^(1/w_i)`; the `n` largest keys win.
fn take_biased<R: Rng>(
    pool: &mut Vec<DeviceId>,
    db: &iotscope_devicedb::DeviceDb,
    n: usize,
    rng: &mut R,
    weight: impl Fn(&IotDevice) -> f64,
) -> Vec<DeviceId> {
    let n = n.min(pool.len());
    let mut keyed: Vec<(f64, usize)> = pool
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let w = weight(db.device(*id)).max(1e-9);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.powf(1.0 / w), i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    let mut take_idx: Vec<usize> = keyed[..n].iter().map(|(_, i)| *i).collect();
    take_idx.sort_unstable_by(|a, b| b.cmp(a));
    let mut out: Vec<DeviceId> = take_idx.into_iter().map(|i| pool.swap_remove(i)).collect();
    out.reverse();
    out
}

/// Draw an onset interval reproducing Fig 2 (≈46% on day one, ≈10.8% each
/// following day).
fn draw_onset<R: Rng>(rng: &mut R, hours: u32) -> u32 {
    // Slightly above the 46% the paper reports for day one, because sparse
    // duty cycles delay some devices' first emission past their onset.
    let day = if rng.gen::<f64>() < 0.50 {
        0
    } else {
        rng.gen_range(1..6u32)
    };
    // Onsets cluster toward the start of their day (front-loading hour 1
    // keeps the hourly packet series from ramping within day one, which
    // would otherwise correlate packets with the discovery curve).
    let u: f64 = rng.gen();
    let hour_in_day = (u * u * u * 24.0) as u32;
    (day * 24 + hour_in_day + 1).min(hours)
}

/// Standard-normal draw (Box–Muller; `rand` without `rand_distr`).
fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A mean-1 lognormal multiplier with the given sigma.
fn lognormal_factor<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    (std_normal(rng) * sigma - sigma * sigma / 2.0).exp()
}

/// `n` lognormal shares normalized to sum to 1.
fn lognormal_shares<R: Rng>(rng: &mut R, n: usize, sigma: f64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| lognormal_factor(rng, sigma)).collect();
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

/// Reshape `shares` so the first `k` entries jointly hold `mass`, keeping
/// the rest proportional. Used to plant heavy-hitter structure.
fn concentrate(shares: &mut [f64], k: usize, mass: f64) {
    if k == 0 || k >= shares.len() {
        return;
    }
    let rest: f64 = shares[k..].iter().sum();
    for s in shares[..k].iter_mut() {
        *s = mass / k as f64;
    }
    if rest > 0.0 {
        let fix = (1.0 - mass) / rest;
        for s in shares[k..].iter_mut() {
            *s *= fix;
        }
    }
}

/// Pick a device from `pool` preferring earlier predicates; does *not*
/// remove it from the pool.
fn pick_preferred(
    pool: &[DeviceId],
    db: &iotscope_devicedb::DeviceDb,
    preds: &[&dyn Fn(&IotDevice) -> bool],
) -> Option<DeviceId> {
    for pred in preds {
        if let Some(id) = pool.iter().find(|id| pred(db.device(**id))) {
            return Some(*id);
        }
    }
    None
}

/// The service port a victim would reply from.
fn victim_service_port<R: Rng>(dev: &IotDevice, rng: &mut R) -> u16 {
    match &dev.profile {
        DeviceProfile::Cps(services) => services.first().map(|s| s.port()).unwrap_or(502),
        DeviceProfile::Consumer(kind) => match kind {
            ConsumerKind::Router => *[80u16, 23, 7547].get(rng.gen_range(0..3)).unwrap_or(&80),
            ConsumerKind::IpCamera => *[80u16, 554].get(rng.gen_range(0..2)).unwrap_or(&80),
            ConsumerKind::Printer => *[9100u16, 80, 515].get(rng.gen_range(0..3)).unwrap_or(&9100),
            ConsumerKind::NetworkStorage => *[445u16, 80].get(rng.gen_range(0..2)).unwrap_or(&445),
            ConsumerKind::TvBoxDvr => 80,
            ConsumerKind::ElectricHub => 80,
        },
    }
}

/// Draw a tail victim's total backscatter budget (Fig 6 bands).
fn tail_victim_budget<R: Rng>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    if u < 0.50 {
        rng.gen_range(20.0..170.0)
    } else if u < 0.83 {
        loguniform(rng, 170.0, 10_000.0)
    } else {
        loguniform(rng, 10_000.0, 60_000.0)
    }
}

fn loguniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::HourTraffic;
    use iotscope_net::protocol::TransportProtocol;
    use std::collections::HashSet;

    fn built() -> BuiltScenario {
        PaperScenario::build(PaperScenarioConfig::tiny(11))
    }

    #[test]
    fn build_is_deterministic() {
        let a = PaperScenario::build(PaperScenarioConfig::tiny(5));
        let b = PaperScenario::build(PaperScenarioConfig::tiny(5));
        assert_eq!(a.scenario.actors().len(), b.scenario.actors().len());
        assert_eq!(a.scenario.generate_hour(10), b.scenario.generate_hour(10));
    }

    #[test]
    fn roles_cover_all_classes() {
        let b = built();
        assert!(!b.truth.devices_with_role(Role::TcpScanner).is_empty());
        assert!(!b.truth.devices_with_role(Role::IcmpScanner).is_empty());
        assert!(!b.truth.devices_with_role(Role::UdpActor).is_empty());
        assert!(!b.truth.devices_with_role(Role::DosVictim).is_empty());
    }

    #[test]
    fn victim_counts_scale_with_population() {
        let b = built();
        let victims = b.truth.devices_with_role(Role::DosVictim);
        // tiny: 600 consumer (394/15299 → ~15) + 450 CPS (445/11582 → ~17).
        assert!(
            (20..=50).contains(&victims.len()),
            "{} victims",
            victims.len()
        );
    }

    #[test]
    fn udp_actors_dominate_population() {
        let b = built();
        let udp = b.truth.devices_with_role(Role::UdpActor).len();
        let designated = b.truth.num_designated();
        assert!(
            udp as f64 > 0.8 * designated as f64,
            "udp {udp} designated {designated}"
        );
    }

    #[test]
    fn traffic_contains_all_protocols() {
        let b = built();
        let mut protos = HashSet::new();
        for i in [1u32, 20, 50, 100, 140] {
            for f in b.scenario.generate_hour(i).flows {
                protos.insert(f.protocol);
            }
        }
        assert!(protos.contains(&TransportProtocol::Tcp));
        assert!(protos.contains(&TransportProtocol::Udp));
        assert!(protos.contains(&TransportProtocol::Icmp));
    }

    #[test]
    fn telnet_is_the_top_scanned_service() {
        let b = built();
        let mut telnet = 0u64;
        let mut http = 0u64;
        let mut ssh = 0u64;
        for ht in b.scenario.generate() {
            for f in &ht.flows {
                if f.protocol == TransportProtocol::Tcp && f.tcp_flags.is_bare_syn() {
                    match ScanService::from_port(f.dst_port) {
                        Some(ScanService::Telnet) => telnet += u64::from(f.packets),
                        Some(ScanService::Http) => http += u64::from(f.packets),
                        Some(ScanService::Ssh) => ssh += u64::from(f.packets),
                        _ => {}
                    }
                }
            }
        }
        assert!(telnet > 3 * http, "telnet {telnet} http {http}");
        assert!(http > ssh / 3, "http {http} ssh {ssh}");
    }

    #[test]
    fn dos_spikes_land_on_schedule() {
        let b = built();
        let hours: Vec<HourTraffic> = b.scenario.generate();
        let backscatter_pkts = |ht: &HourTraffic| -> u64 {
            ht.flows
                .iter()
                .filter(|f| match f.protocol {
                    TransportProtocol::Tcp => f.tcp_flags.is_backscatter(),
                    TransportProtocol::Icmp => f.icmp_type().is_some_and(|t| t.is_backscatter()),
                    TransportProtocol::Udp => false,
                })
                .map(|f| u64::from(f.packets))
                .sum()
        };
        let series: Vec<u64> = hours.iter().map(backscatter_pkts).collect();
        let spike_mean: f64 = [6usize, 7, 8, 53, 54, 55]
            .iter()
            .map(|i| series[*i - 1] as f64)
            .sum::<f64>()
            / 6.0;
        let quiet_mean: f64 = [15usize, 30, 40, 60, 110, 130]
            .iter()
            .map(|i| series[*i - 1] as f64)
            .sum::<f64>()
            / 6.0;
        assert!(
            spike_mean > 5.0 * (quiet_mean + 1.0),
            "spikes {spike_mean} quiet {quiet_mean}"
        );
    }

    #[test]
    fn backroomnet_scanner_appears_late() {
        let b = built();
        let early: u64 = b
            .scenario
            .generate_hour(50)
            .flows
            .iter()
            .filter(|f| f.dst_port == 3387 && f.tcp_flags.is_bare_syn())
            .map(|f| u64::from(f.packets))
            .sum();
        let late: u64 = b
            .scenario
            .generate_hour(120)
            .flows
            .iter()
            .filter(|f| f.dst_port == 3387 && f.tcp_flags.is_bare_syn())
            .map(|f| u64::from(f.packets))
            .sum();
        assert_eq!(early, 0);
        assert!(late > 100, "late {late}");
    }

    #[test]
    fn port_sweep_spikes_distinct_ports_at_119() {
        let b = built();
        let ports_at = |i: u32| -> usize {
            b.scenario
                .generate_hour(i)
                .flows
                .iter()
                .filter(|f| f.protocol == TransportProtocol::Tcp)
                .map(|f| f.dst_port)
                .collect::<HashSet<u16>>()
                .len()
        };
        let p119 = ports_at(119);
        let p60 = ports_at(60);
        assert!(p119 > 5_000, "interval 119 ports {p119}");
        assert!(p119 > 5 * p60.max(1), "119={p119} 60={p60}");
    }

    #[test]
    fn onset_distribution_front_loads_day_one() {
        let b = built();
        let day1 = b.truth.onset.values().filter(|i| **i <= 24).count();
        let total = b.truth.onset.len();
        let frac = day1 as f64 / total as f64;
        assert!((0.35..=0.60).contains(&frac), "day-1 onset fraction {frac}");
    }

    #[test]
    fn noise_sources_have_no_device() {
        let b = built();
        // device:None actors = noise sources + planted shadow IoT devices.
        let anonymous = b
            .scenario
            .actors()
            .iter()
            .filter(|a| a.device.is_none())
            .count();
        assert_eq!(anonymous, 40 + 12);
        for a in b.scenario.actors() {
            if a.device.is_none() {
                assert_eq!(a.src_ip.octets()[0], 198);
                assert!(b.inventory.db.lookup_ip(a.src_ip).is_none());
            }
        }
    }

    #[test]
    fn shadow_iot_and_botnets_recorded_in_truth() {
        let b = built();
        assert_eq!(b.truth.shadow_iot.len(), 12);
        for ip in &b.truth.shadow_iot {
            assert!(b.inventory.db.lookup_ip(*ip).is_none(), "{ip} is indexed");
            assert_eq!(ip.octets()[1], 51); // 198.51/16, distinct from noise
        }
        assert_eq!(b.truth.botnets.len(), 2);
        for members in &b.truth.botnets {
            assert!(members.len() >= 5);
            for id in members {
                assert!(b.truth.has_role(*id, Role::TcpScanner));
            }
        }
    }

    #[test]
    fn expected_packets_scale_with_config() {
        let small = PaperScenario::build(PaperScenarioConfig::tiny(3));
        let mut bigger_cfg = PaperScenarioConfig::tiny(3);
        bigger_cfg.scale *= 2.0;
        let bigger = PaperScenario::build(bigger_cfg);
        let ratio =
            bigger.scenario.expected_total_packets() / small.scenario.expected_total_packets();
        assert!((1.6..=2.2).contains(&ratio), "ratio {ratio}");
    }
}
