//! The ground-truth ledger: what the calibrated scenario planted.
//!
//! Validation compares what the analysis pipeline *infers* from the
//! generated flowtuples against this ledger. The analysis never reads it.

use iotscope_devicedb::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Roles a device can play in the simulation (non-exclusive: most scanners
/// also spray UDP, matching §IV-A's 25,242 UDP devices out of 26,881).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Emits TCP SYN scans.
    TcpScanner,
    /// Emits ICMP echo-request scans.
    IcmpScanner,
    /// Emits UDP traffic.
    UdpActor,
    /// A DoS victim emitting backscatter.
    DosVictim,
}

/// What the scenario planted, per device and globally.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Roles per designated device.
    pub roles: HashMap<DeviceId, HashSet<Role>>,
    /// First interval at which each designated device emits (drives the
    /// discovery curve of Fig 2).
    pub onset: HashMap<DeviceId, u32>,
    /// Intervals carrying planted DoS spikes (Fig 7).
    pub dos_spike_intervals: Vec<u32>,
    /// Devices planted as *truly malicious* beyond scanning — the subset
    /// the threat-intel substrate will index (Section V).
    pub flagged_malicious: Vec<DeviceId>,
    /// Addresses of planted *unindexed* IoT devices: they behave like IoT
    /// scanners but are absent from the inventory (the §VI fuzzy-
    /// fingerprinting target population).
    pub shadow_iot: Vec<std::net::Ipv4Addr>,
    /// Planted coordinated botnets (§VII future work): each inner vector
    /// lists one botnet's member devices.
    pub botnets: Vec<Vec<DeviceId>>,
}

impl GroundTruth {
    /// An empty ledger.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Write the ledger to a line-oriented text file:
    ///
    /// ```text
    /// #iotscope-truth v1
    /// role|<device-id>|<onset>|<Role>[+<Role>…]
    /// spike|<interval>
    /// shadow|<ip>
    /// botnet|<device-id>[+<device-id>…]
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "#iotscope-truth v1")?;
        let mut ids: Vec<&DeviceId> = self.roles.keys().collect();
        ids.sort();
        for id in ids {
            let mut roles: Vec<String> = self.roles[id].iter().map(|r| format!("{r:?}")).collect();
            roles.sort();
            let onset = self.onset.get(id).copied().unwrap_or(0);
            writeln!(w, "role|{}|{}|{}", id.0, onset, roles.join("+"))?;
        }
        for i in &self.dos_spike_intervals {
            writeln!(w, "spike|{i}")?;
        }
        for ip in &self.shadow_iot {
            writeln!(w, "shadow|{ip}")?;
        }
        for members in &self.botnets {
            let list: Vec<String> = members.iter().map(|d| d.0.to_string()).collect();
            writeln!(w, "botnet|{}", list.join("+"))?;
        }
        w.flush()
    }

    /// Load a ledger written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed content.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<GroundTruth> {
        use std::io::BufRead as _;
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let reader = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut lines = reader.lines();
        let header = lines
            .next()
            .transpose()?
            .ok_or_else(|| bad("empty truth file".into()))?;
        if header.trim() != "#iotscope-truth v1" {
            return Err(bad(format!("bad header {header:?}")));
        }
        let mut truth = GroundTruth::new();
        for line in lines {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            match fields[0] {
                "role" if fields.len() == 4 => {
                    let id = DeviceId(
                        fields[1]
                            .parse()
                            .map_err(|_| bad(format!("bad device id {:?}", fields[1])))?,
                    );
                    let onset: u32 = fields[2]
                        .parse()
                        .map_err(|_| bad(format!("bad onset {:?}", fields[2])))?;
                    if onset > 0 {
                        truth.record_onset(id, onset);
                    }
                    for role in fields[3].split('+') {
                        let role = match role {
                            "TcpScanner" => Role::TcpScanner,
                            "IcmpScanner" => Role::IcmpScanner,
                            "UdpActor" => Role::UdpActor,
                            "DosVictim" => Role::DosVictim,
                            other => return Err(bad(format!("unknown role {other:?}"))),
                        };
                        truth.add_role(id, role);
                    }
                }
                "spike" if fields.len() == 2 => {
                    truth.dos_spike_intervals.push(
                        fields[1]
                            .parse()
                            .map_err(|_| bad(format!("bad interval {:?}", fields[1])))?,
                    );
                }
                "shadow" if fields.len() == 2 => {
                    truth.shadow_iot.push(
                        fields[1]
                            .parse()
                            .map_err(|_| bad(format!("bad ip {:?}", fields[1])))?,
                    );
                }
                "botnet" if fields.len() == 2 => {
                    let mut members = Vec::new();
                    for part in fields[1].split('+') {
                        members.push(DeviceId(
                            part.parse()
                                .map_err(|_| bad(format!("bad member {part:?}")))?,
                        ));
                    }
                    truth.botnets.push(members);
                }
                other => return Err(bad(format!("unknown record {other:?}"))),
            }
        }
        Ok(truth)
    }

    /// Record `role` for `device`.
    pub fn add_role(&mut self, device: DeviceId, role: Role) {
        self.roles.entry(device).or_default().insert(role);
    }

    /// Record the first-emission interval for `device` (keeps the minimum
    /// across repeated records).
    pub fn record_onset(&mut self, device: DeviceId, interval: u32) {
        self.onset
            .entry(device)
            .and_modify(|i| *i = (*i).min(interval))
            .or_insert(interval);
    }

    /// All devices holding `role`.
    pub fn devices_with_role(&self, role: Role) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .roles
            .iter()
            .filter(|(_, roles)| roles.contains(&role))
            .map(|(d, _)| *d)
            .collect();
        v.sort();
        v
    }

    /// Whether `device` holds `role`.
    pub fn has_role(&self, device: DeviceId, role: Role) -> bool {
        self.roles.get(&device).is_some_and(|r| r.contains(&role))
    }

    /// Number of designated (planted) devices.
    pub fn num_designated(&self) -> usize {
        self.roles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_accumulate_per_device() {
        let mut gt = GroundTruth::new();
        gt.add_role(DeviceId(1), Role::TcpScanner);
        gt.add_role(DeviceId(1), Role::UdpActor);
        gt.add_role(DeviceId(2), Role::DosVictim);
        assert!(gt.has_role(DeviceId(1), Role::TcpScanner));
        assert!(gt.has_role(DeviceId(1), Role::UdpActor));
        assert!(!gt.has_role(DeviceId(1), Role::DosVictim));
        assert_eq!(gt.num_designated(), 2);
        assert_eq!(gt.devices_with_role(Role::DosVictim), vec![DeviceId(2)]);
    }

    #[test]
    fn onset_keeps_minimum() {
        let mut gt = GroundTruth::new();
        gt.record_onset(DeviceId(5), 30);
        gt.record_onset(DeviceId(5), 10);
        gt.record_onset(DeviceId(5), 20);
        assert_eq!(gt.onset[&DeviceId(5)], 10);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut gt = GroundTruth::new();
        gt.add_role(DeviceId(3), Role::TcpScanner);
        gt.add_role(DeviceId(3), Role::UdpActor);
        gt.add_role(DeviceId(9), Role::DosVictim);
        gt.record_onset(DeviceId(3), 17);
        gt.record_onset(DeviceId(9), 1);
        gt.dos_spike_intervals = vec![6, 53];
        gt.shadow_iot = vec![std::net::Ipv4Addr::new(198, 51, 0, 1)];
        gt.botnets = vec![vec![DeviceId(3), DeviceId(9)]];

        let path = std::env::temp_dir().join(format!("iotscope-truth-{}.tsv", std::process::id()));
        gt.save(&path).unwrap();
        let back = GroundTruth::load(&path).unwrap();
        assert_eq!(back.roles, gt.roles);
        assert_eq!(back.onset, gt.onset);
        assert_eq!(back.dos_spike_intervals, gt.dos_spike_intervals);
        assert_eq!(back.shadow_iot, gt.shadow_iot);
        assert_eq!(back.botnets, gt.botnets);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let path =
            std::env::temp_dir().join(format!("iotscope-truth-bad-{}.tsv", std::process::id()));
        std::fs::write(&path, "not a truth file\n").unwrap();
        assert!(GroundTruth::load(&path).is_err());
        std::fs::write(&path, "#iotscope-truth v1\nrole|x|1|TcpScanner\n").unwrap();
        assert!(GroundTruth::load(&path).is_err());
        std::fs::write(&path, "#iotscope-truth v1\nrole|1|1|Wizard\n").unwrap();
        assert!(GroundTruth::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn devices_with_role_sorted() {
        let mut gt = GroundTruth::new();
        for id in [9u32, 3, 7] {
            gt.add_role(DeviceId(id), Role::UdpActor);
        }
        assert_eq!(
            gt.devices_with_role(Role::UdpActor),
            vec![DeviceId(3), DeviceId(7), DeviceId(9)]
        );
    }
}
