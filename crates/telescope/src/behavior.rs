//! Actor behaviors: *what* an actor emits toward the telescope.
//!
//! Each behavior turns a per-hour packet allowance into flowtuples. The
//! catalogue covers everything the paper observes: TCP SYN scanning
//! (§IV-C), ICMP echo scanning, UDP spraying and dedicated UDP port
//! scanning (§IV-A), DoS backscatter (§IV-B), the interval-119 port sweep
//! (Fig 9b), and background misconfiguration noise.

use crate::config::TelescopeConfig;
use iotscope_devicedb::DeviceId;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::{IcmpType, TcpFlags};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What a traffic source sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActorBehavior {
    /// TCP SYN scanning of a port set (one packet per flow). With
    /// probability `random_port_prob` a probe targets a uniformly random
    /// port instead — CPS scanners sweep wider port ranges than consumer
    /// scanners (§IV-C: 576 vs 246 distinct ports/hour).
    TcpScan {
        /// Destination ports of the scanned service group.
        ports: Vec<u16>,
        /// Probability of probing a random port instead.
        random_port_prob: f64,
    },
    /// ICMP echo-request scanning (ping sweeps).
    IcmpScan,
    /// UDP spraying across random destinations/ports, with extra mass on
    /// `favored` ports (the Netcore-backdoor family of Table IV).
    UdpSpray {
        /// `(port, weight)` pairs that receive the favored mass.
        favored: Vec<(u16, f64)>,
        /// Probability a packet targets a favored port.
        favored_prob: f64,
        /// Packets aggregated per emitted flow.
        pkts_per_flow: u32,
    },
    /// Dedicated UDP scanning of a single port (the 91–226-device groups
    /// behind NetBIOS/137, 53413, mDNS/5353, … in Table IV).
    UdpPortScan {
        /// The scanned port.
        port: u16,
        /// Packets aggregated per emitted flow.
        pkts_per_flow: u32,
    },
    /// DoS-victim backscatter: replies (SYN-ACK/RST/ICMP echo-reply) to
    /// spoofed flood sources that happen to fall in the dark space.
    Backscatter {
        /// The attacked service's port (becomes the reply's source port).
        service_port: u16,
        /// Fraction of replies that are ICMP rather than TCP.
        icmp_share: f64,
    },
    /// A one-off wide port sweep: `ports` distinct ports across
    /// `dst_count` destinations (the Dominican-Republic IP camera of
    /// §IV-C scanning 10,249 ports on 55 hosts at interval 119).
    PortSweep {
        /// Number of distinct destination addresses.
        dst_count: u32,
        /// Number of distinct ports swept.
        port_count: u32,
    },
    /// Background misconfiguration noise (mis-addressed DNS/NTP/SSDP).
    Misconfig,
}

/// One traffic source: a device (or anonymous noise host) with a behavior,
/// an activity pattern, and a total packet budget over the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// The inventory device driving this actor; `None` for noise sources
    /// that are not IoT devices (they must not correlate).
    pub device: Option<DeviceId>,
    /// Source address of all emitted flows.
    pub src_ip: Ipv4Addr,
    /// What the actor sends.
    pub behavior: ActorBehavior,
    /// When the actor is active.
    pub pattern: crate::pattern::ActivityPattern,
    /// Total packets over the whole window (already scaled).
    pub budget: f64,
    /// First interval (1-based) at which the actor may emit; models the
    /// staggered onset behind the paper's discovery curve (Fig 2).
    pub onset: u32,
    /// Last interval at which the actor may emit (`u32::MAX` = never
    /// retires). Compromised devices churn — infections get cleaned or
    /// devices go offline — which keeps the *hourly* active population
    /// roughly stationary even as the *cumulative* discovered count grows.
    pub retire: u32,
    /// Emit at least one flow on the first active interval even if the
    /// scaled budget rounds to zero, so the device is discoverable.
    pub guarantee_onset_flow: bool,
}

impl Actor {
    /// Emit flows for one hour given a packet allowance.
    pub fn emit<R: Rng>(
        &self,
        n_packets: u64,
        rng: &mut R,
        telescope: &TelescopeConfig,
        out: &mut Vec<FlowTuple>,
    ) {
        if n_packets == 0 {
            return;
        }
        match &self.behavior {
            ActorBehavior::TcpScan {
                ports,
                random_port_prob,
            } => {
                for _ in 0..n_packets {
                    let dst = telescope.random_dark_addr(rng);
                    let port = if !ports.is_empty() && rng.gen::<f64>() >= *random_port_prob {
                        ports[rng.gen_range(0..ports.len())]
                    } else {
                        rng.gen::<u16>()
                    };
                    out.push(
                        FlowTuple::tcp(self.src_ip, dst, ephemeral_port(rng), port, TcpFlags::SYN)
                            .with_ttl(plausible_ttl(rng)),
                    );
                }
            }
            ActorBehavior::IcmpScan => {
                for _ in 0..n_packets {
                    let dst = telescope.random_dark_addr(rng);
                    out.push(
                        FlowTuple::icmp(self.src_ip, dst, IcmpType::EchoRequest)
                            .with_ttl(plausible_ttl(rng)),
                    );
                }
            }
            ActorBehavior::UdpSpray {
                favored,
                favored_prob,
                pkts_per_flow,
            } => {
                let per_flow = (*pkts_per_flow).max(1);
                let flows = n_packets.div_ceil(u64::from(per_flow));
                let mut remaining = n_packets;
                for _ in 0..flows {
                    let dst = telescope.random_dark_addr(rng);
                    let port = if !favored.is_empty() && rng.gen::<f64>() < *favored_prob {
                        weighted_port(favored, rng)
                    } else {
                        rng.gen::<u16>()
                    };
                    let pkts = remaining.min(u64::from(per_flow)) as u32;
                    remaining -= u64::from(pkts);
                    let mut f = FlowTuple::udp(self.src_ip, dst, ephemeral_port(rng), port)
                        .with_packets(pkts)
                        .with_ttl(plausible_ttl(rng));
                    f.ip_len = rng.gen_range(60..=520);
                    out.push(f);
                }
            }
            ActorBehavior::UdpPortScan {
                port,
                pkts_per_flow,
            } => {
                let per_flow = (*pkts_per_flow).max(1);
                let flows = n_packets.div_ceil(u64::from(per_flow));
                let mut remaining = n_packets;
                for _ in 0..flows {
                    let dst = telescope.random_dark_addr(rng);
                    let pkts = remaining.min(u64::from(per_flow)) as u32;
                    remaining -= u64::from(pkts);
                    out.push(
                        FlowTuple::udp(self.src_ip, dst, ephemeral_port(rng), *port)
                            .with_packets(pkts)
                            .with_ttl(plausible_ttl(rng)),
                    );
                }
            }
            ActorBehavior::Backscatter {
                service_port,
                icmp_share,
            } => {
                let mut remaining = n_packets;
                while remaining > 0 {
                    let dst = telescope.random_dark_addr(rng);
                    let pkts = remaining.min(u64::from(rng.gen_range(1..=3u32))) as u32;
                    remaining -= u64::from(pkts);
                    if rng.gen::<f64>() < *icmp_share {
                        out.push(
                            FlowTuple::icmp(self.src_ip, dst, backscatter_icmp_type(rng))
                                .with_packets(pkts)
                                .with_ttl(plausible_ttl(rng)),
                        );
                    } else {
                        let flags = if rng.gen::<f64>() < 0.85 {
                            TcpFlags::SYN | TcpFlags::ACK
                        } else {
                            TcpFlags::RST | TcpFlags::ACK
                        };
                        out.push(
                            FlowTuple::tcp(
                                self.src_ip,
                                dst,
                                *service_port,
                                ephemeral_port(rng),
                                flags,
                            )
                            .with_packets(pkts)
                            .with_ttl(plausible_ttl(rng)),
                        );
                    }
                }
            }
            ActorBehavior::PortSweep {
                dst_count,
                port_count,
            } => {
                let dsts: Vec<Ipv4Addr> = (0..(*dst_count).max(1))
                    .map(|_| telescope.random_dark_addr(rng))
                    .collect();
                let base: u16 = rng.gen_range(1..=10_000);
                let span = (*port_count).max(1);
                for i in 0..n_packets {
                    let port = base.wrapping_add((i % u64::from(span)) as u16);
                    let dst = dsts[(i % dsts.len() as u64) as usize];
                    out.push(
                        FlowTuple::tcp(self.src_ip, dst, ephemeral_port(rng), port, TcpFlags::SYN)
                            .with_ttl(plausible_ttl(rng)),
                    );
                }
            }
            ActorBehavior::Misconfig => {
                const NOISE_PORTS: [u16; 4] = [53, 123, 1900, 161];
                for _ in 0..n_packets {
                    let dst = telescope.random_dark_addr(rng);
                    let port = NOISE_PORTS[rng.gen_range(0..NOISE_PORTS.len())];
                    out.push(
                        FlowTuple::udp(self.src_ip, dst, ephemeral_port(rng), port)
                            .with_ttl(plausible_ttl(rng)),
                    );
                }
            }
        }
    }

    /// Whether this actor's behavior classifies as scanning once observed
    /// (used by the ground-truth ledger).
    pub fn is_scanning_behavior(&self) -> bool {
        matches!(
            self.behavior,
            ActorBehavior::TcpScan { .. }
                | ActorBehavior::IcmpScan
                | ActorBehavior::PortSweep { .. }
        )
    }
}

/// A plausible initial-TTL-minus-hops value.
fn plausible_ttl<R: Rng>(rng: &mut R) -> u8 {
    let base = *[64u8, 128, 255]
        .get(rng.gen_range(0..3usize))
        .expect("index in range");
    base - rng.gen_range(4..28)
}

/// A random ephemeral source port.
fn ephemeral_port<R: Rng>(rng: &mut R) -> u16 {
    rng.gen_range(1025..=65535)
}

fn weighted_port<R: Rng>(favored: &[(u16, f64)], rng: &mut R) -> u16 {
    let total: f64 = favored.iter().map(|(_, w)| *w).sum();
    let mut draw = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (p, w) in favored {
        if draw < *w {
            return *p;
        }
        draw -= w;
    }
    favored.last().expect("non-empty favored list").0
}

/// Draw one of the paper's nine backscatter ICMP reply types, biased
/// toward echo-reply and destination-unreachable as at real telescopes.
fn backscatter_icmp_type<R: Rng>(rng: &mut R) -> IcmpType {
    match rng.gen_range(0..10u32) {
        0..=5 => IcmpType::EchoReply,
        6..=7 => IcmpType::DestinationUnreachable,
        8 => IcmpType::TimeExceeded,
        _ => IcmpType::SourceQuench,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ActivityPattern;
    use iotscope_net::protocol::TransportProtocol;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn actor(behavior: ActorBehavior) -> Actor {
        Actor {
            device: Some(DeviceId(1)),
            src_ip: Ipv4Addr::new(203, 0, 113, 9),
            behavior,
            pattern: ActivityPattern::Steady,
            budget: 100.0,
            onset: 1,
            retire: u32::MAX,
            guarantee_onset_flow: true,
        }
    }

    fn emit(behavior: ActorBehavior, n: u64, seed: u64) -> Vec<FlowTuple> {
        let cfg = TelescopeConfig::paper();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        actor(behavior).emit(n, &mut rng, &cfg, &mut out);
        out
    }

    #[test]
    fn tcp_scan_emits_bare_syns_to_service_ports() {
        let flows = emit(
            ActorBehavior::TcpScan {
                ports: vec![23, 2323],
                random_port_prob: 0.0,
            },
            200,
            1,
        );
        assert_eq!(flows.len(), 200);
        for f in &flows {
            assert_eq!(f.protocol, TransportProtocol::Tcp);
            assert!(f.tcp_flags.is_bare_syn());
            assert!(f.dst_port == 23 || f.dst_port == 2323);
            assert_eq!(f.packets, 1);
            assert!(TelescopeConfig::paper().contains(f.dst_ip));
        }
    }

    #[test]
    fn tcp_scan_random_port_prob_widens_ports() {
        let flows = emit(
            ActorBehavior::TcpScan {
                ports: vec![23],
                random_port_prob: 0.5,
            },
            400,
            2,
        );
        let distinct: std::collections::HashSet<u16> = flows.iter().map(|f| f.dst_port).collect();
        assert!(distinct.len() > 100, "only {} ports", distinct.len());
        assert!(flows.iter().filter(|f| f.dst_port == 23).count() > 120);
    }

    #[test]
    fn icmp_scan_is_echo_request() {
        let flows = emit(ActorBehavior::IcmpScan, 50, 3);
        assert_eq!(flows.len(), 50);
        for f in &flows {
            assert_eq!(f.icmp_type(), Some(IcmpType::EchoRequest));
        }
    }

    #[test]
    fn udp_spray_hits_favored_ports_proportionally() {
        let flows = emit(
            ActorBehavior::UdpSpray {
                favored: vec![(37547, 3.0), (32124, 1.0)],
                favored_prob: 0.5,
                pkts_per_flow: 1,
            },
            2000,
            4,
        );
        let total: u64 = flows.iter().map(|f| u64::from(f.packets)).sum();
        assert_eq!(total, 2000);
        let hits_a = flows.iter().filter(|f| f.dst_port == 37547).count();
        let hits_b = flows.iter().filter(|f| f.dst_port == 32124).count();
        assert!(hits_a > 2 * hits_b, "a={hits_a} b={hits_b}");
        assert!(hits_a + hits_b > 800);
    }

    #[test]
    fn udp_pkts_per_flow_aggregates() {
        let flows = emit(
            ActorBehavior::UdpPortScan {
                port: 137,
                pkts_per_flow: 4,
            },
            10,
            5,
        );
        let total: u64 = flows.iter().map(|f| u64::from(f.packets)).sum();
        assert_eq!(total, 10);
        assert_eq!(flows.len(), 3); // ceil(10/4)
        for f in &flows {
            assert_eq!(f.dst_port, 137);
            assert_eq!(f.protocol, TransportProtocol::Udp);
        }
    }

    #[test]
    fn backscatter_replies_look_like_backscatter() {
        let flows = emit(
            ActorBehavior::Backscatter {
                service_port: 44818,
                icmp_share: 0.1,
            },
            500,
            6,
        );
        let total: u64 = flows.iter().map(|f| u64::from(f.packets)).sum();
        assert_eq!(total, 500);
        let mut saw_icmp = false;
        for f in &flows {
            match f.protocol {
                TransportProtocol::Tcp => {
                    assert!(f.tcp_flags.is_backscatter(), "flags {}", f.tcp_flags);
                    assert_eq!(f.src_port, 44818);
                }
                TransportProtocol::Icmp => {
                    saw_icmp = true;
                    assert!(f.icmp_type().unwrap().is_backscatter());
                }
                TransportProtocol::Udp => panic!("backscatter must not emit UDP"),
            }
        }
        assert!(saw_icmp);
    }

    #[test]
    fn port_sweep_covers_many_ports_few_dsts() {
        let flows = emit(
            ActorBehavior::PortSweep {
                dst_count: 55,
                port_count: 10_249,
            },
            10_249,
            7,
        );
        let ports: std::collections::HashSet<u16> = flows.iter().map(|f| f.dst_port).collect();
        let dsts: std::collections::HashSet<Ipv4Addr> = flows.iter().map(|f| f.dst_ip).collect();
        assert!(ports.len() > 10_000, "{} ports", ports.len());
        assert!(dsts.len() <= 55);
    }

    #[test]
    fn misconfig_targets_infrastructure_ports() {
        let flows = emit(ActorBehavior::Misconfig, 100, 8);
        for f in &flows {
            assert!(matches!(f.dst_port, 53 | 123 | 1900 | 161));
        }
    }

    #[test]
    fn zero_allowance_emits_nothing() {
        let flows = emit(ActorBehavior::IcmpScan, 0, 9);
        assert!(flows.is_empty());
    }

    #[test]
    fn emission_is_deterministic_per_seed() {
        let a = emit(ActorBehavior::IcmpScan, 20, 10);
        let b = emit(ActorBehavior::IcmpScan, 20, 10);
        assert_eq!(a, b);
        let c = emit(ActorBehavior::IcmpScan, 20, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn scanning_behavior_predicate() {
        assert!(actor(ActorBehavior::IcmpScan).is_scanning_behavior());
        assert!(actor(ActorBehavior::TcpScan {
            ports: vec![23],
            random_port_prob: 0.0
        })
        .is_scanning_behavior());
        assert!(!actor(ActorBehavior::Backscatter {
            service_port: 80,
            icmp_share: 0.0
        })
        .is_scanning_behavior());
        assert!(!actor(ActorBehavior::Misconfig).is_scanning_behavior());
    }
}
