//! Deterministic network-telescope (darknet) simulator.
//!
//! The paper's raw input — 5 TB of UCSD /8 telescope traffic — is not
//! redistributable, so this crate synthesizes the closest equivalent: a
//! population of traffic *actors* (compromised IoT scanners, DoS victims
//! emitting backscatter, and misconfiguration noise) whose aggregate
//! flowtuple stream over the paper's 143-hour window reproduces the
//! published shapes (protocol mixes, port tables, heavy hitters, DoS spike
//! schedule, discovery curve).
//!
//! The crate exposes three layers:
//!
//! * mechanism — [`pattern::ActivityPattern`] (when an actor is active) and
//!   [`behavior::ActorBehavior`] (what it emits);
//! * engine — [`scenario::Scenario`] turns an actor population into
//!   per-hour flowtuple vectors, deterministically from one seed;
//! * calibration — [`paper::PaperScenario`] builds the actor population
//!   matching the paper's §III–§V numbers on top of a
//!   [`iotscope_devicedb`] inventory, and records what it planted in a
//!   [`ground_truth::GroundTruth`] ledger for validation.
//!
//! # Example
//!
//! ```
//! use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
//!
//! let cfg = PaperScenarioConfig::tiny(42);
//! let built = PaperScenario::build(cfg);
//! let hour1 = built.scenario.generate_hour(1);
//! assert!(!hour1.flows.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod behavior;
pub mod config;
pub mod ground_truth;
pub mod paper;
pub mod pattern;
pub mod scenario;

pub use config::TelescopeConfig;
pub use ground_truth::GroundTruth;
pub use scenario::{HourTraffic, Scenario};

/// Derive a stream-independent RNG seed from a master seed and two indices
/// (e.g. actor and interval), via SplitMix64 finalization.
///
/// Every actor-hour gets its own RNG so generation order (and parallelism)
/// cannot change the output.
pub fn derive_seed(master: u64, a: u64, b: u64) -> u64 {
    let mut z = master
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
        assert_ne!(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
        // Low-entropy inputs should still produce well-spread outputs.
        let outs: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(0, i, 0)).collect();
        assert_eq!(outs.len(), 1000);
    }
}
