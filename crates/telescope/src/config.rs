//! Telescope configuration.

use iotscope_net::addr::Ipv4Cidr;
use iotscope_net::time::AnalysisWindow;
use rand::Rng;
use std::net::Ipv4Addr;

/// The monitored dark address space and analysis window.
///
/// The UCSD telescope monitors a /8 (≈16.7M routable but unused
/// addresses); scaled-down runs may use a shorter window but keep the /8 so
/// address-diversity statistics (distinct destination IPs per hour) retain
/// their shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelescopeConfig {
    /// The dark prefix; packets *to* these addresses are captured.
    pub prefix: Ipv4Cidr,
    /// The hourly analysis window.
    pub window: AnalysisWindow,
}

impl TelescopeConfig {
    /// The paper's setup: a /8 telescope over the 143-hour April 2017
    /// window.
    pub fn paper() -> Self {
        TelescopeConfig {
            prefix: default_prefix(),
            window: AnalysisWindow::paper(),
        }
    }

    /// A short window (same /8 prefix) for tests.
    pub fn short(hours: u32) -> Self {
        TelescopeConfig {
            prefix: default_prefix(),
            window: AnalysisWindow::short(hours),
        }
    }

    /// Number of dark addresses monitored.
    pub fn num_dark_addresses(&self) -> u64 {
        self.prefix.num_addresses()
    }

    /// Whether `ip` is inside the dark space.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.prefix.contains(ip)
    }

    /// Draw a uniformly random dark address — the destination of scans and
    /// the spoofed source (hence backscatter destination) of DoS floods.
    pub fn random_dark_addr<R: Rng>(&self, rng: &mut R) -> Ipv4Addr {
        let idx = rng.gen_range(0..self.prefix.num_addresses());
        self.prefix.addr_at(idx)
    }
}

impl Default for TelescopeConfig {
    fn default() -> Self {
        TelescopeConfig::paper()
    }
}

fn default_prefix() -> Ipv4Cidr {
    "44.0.0.0/8".parse().expect("static CIDR is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_is_a_slash8_over_143_hours() {
        let cfg = TelescopeConfig::paper();
        assert_eq!(cfg.num_dark_addresses(), 1 << 24);
        assert_eq!(cfg.window.num_hours(), 143);
    }

    #[test]
    fn random_dark_addr_stays_inside() {
        let cfg = TelescopeConfig::paper();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let ip = cfg.random_dark_addr(&mut rng);
            assert!(cfg.contains(ip));
        }
    }

    #[test]
    fn random_dark_addr_is_diverse() {
        let cfg = TelescopeConfig::paper();
        let mut rng = StdRng::seed_from_u64(6);
        let distinct: std::collections::HashSet<Ipv4Addr> =
            (0..1000).map(|_| cfg.random_dark_addr(&mut rng)).collect();
        assert!(distinct.len() > 990, "only {} distinct", distinct.len());
    }
}
