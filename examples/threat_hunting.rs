//! Threat hunting with external intelligence (Section V).
//!
//! Runs the full pipeline, then joins the inferred devices against the
//! threat repository and the malware sandbox database: Table VI's category
//! summary, Table VII's family list, and a per-device drill-down of the
//! strongest finding — from darknet flows to malware family attribution.
//!
//! ```text
//! cargo run -p iotscope-examples --bin threat_hunting
//! ```

use iotscope_core::malicious;
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::score::ScoreTable;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::IntelIndex;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn main() {
    // Simulate + infer.
    let built = PaperScenario::build(PaperScenarioConfig::tiny(1337));
    let traffic = built.scenario.generate();
    let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
        .run(&traffic, &AnalyzeOptions::new().threads(4))
        .expect("in-memory analysis")
        .analysis;
    println!("inferred {} compromised devices", analysis.device_count());

    // Stand up the intel substrates (Cymon-like repo + malware DB).
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(1337)).build(&built.inventory.db, &candidates);
    println!(
        "exploring {} devices against {} indexed threat events and {} sandbox reports\n",
        candidates.len(),
        intel.threats.num_events(),
        intel.malware.len()
    );

    // Build the streaming lookup index and fold the analysis into the
    // per-device score table — Tables VI/VII are thin reads of it.
    let index = IntelIndex::build(&intel.threats, &intel.malware);
    let scores = ScoreTable::from_batch(&analysis, &built.inventory.db, &index, Default::default());

    // Table VI.
    let summary = malicious::threat_summary(&scores, &built.inventory.db, &index, &candidates);
    println!(
        "== Table VI: {} of {} explored devices flagged ({:.1}%) ==",
        summary.flagged.len(),
        summary.explored,
        100.0 * summary.flagged.len() as f64 / summary.explored as f64
    );
    for row in &summary.rows {
        println!(
            "  {:<55} {:>4} ({:.1}%)",
            row.category.to_string(),
            row.devices,
            row.pct
        );
    }

    // Table VII.
    let findings = malicious::malware_correlation(&scores, &intel.malware, &intel.resolver);
    println!(
        "\n== Table VII: {} devices touched by {} samples across {} domains ==",
        findings.devices.len(),
        findings.hashes.len(),
        findings.domains.len()
    );
    for family in &findings.families {
        println!("  {family}");
    }

    // Drill into the malware-linked device with the most traffic.
    let Some(worst) = findings
        .devices
        .iter()
        .max_by_key(|id| analysis.devices.get(**id).map_or(0, |o| o.total_packets()))
    else {
        println!("\nno malware-linked device found at this scale");
        return;
    };
    let dev = built.inventory.db.device(*worst);
    let obs = analysis
        .devices
        .get(*worst)
        .expect("malware-linked device was correlated");
    println!("\n== drill-down: {} ==", dev.ip);
    println!("  profile:  {:?}", dev.profile);
    println!(
        "  location: {} via {}",
        dev.country.name(),
        built.inventory.isps.isp(dev.isp).name()
    );
    println!(
        "  darknet:  {} packets ({} scan / {} udp / {} backscatter), first seen interval {}",
        obs.total_packets(),
        obs.scan_packets(),
        obs.packets(iotscope_core::TrafficClass::Udp),
        obs.packets(iotscope_core::TrafficClass::Backscatter),
        obs.first_interval
    );
    println!("  threat events:");
    for e in intel.threats.events_for(dev.ip).iter().take(5) {
        println!("    [{}] {}", e.source, e.category);
    }
    println!("  sandbox samples contacting it:");
    for report in intel.malware.samples_contacting(dev.ip).iter().take(3) {
        let family = intel
            .resolver
            .resolve(&report.sha256)
            .map(|f| f.to_string())
            .unwrap_or_else(|| "unknown".to_owned());
        println!(
            "    {}… → {} (domains: {})",
            &report.sha256.as_hex()[..12],
            family,
            report.network.domains.join(", ")
        );
    }
}
