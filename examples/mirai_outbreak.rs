//! Watching a Mirai-style Telnet worm spread through a telescope.
//!
//! Instead of the paper-calibrated scenario, this example composes actors
//! by hand: an exponential wave of infected consumer devices that scan
//! Telnet (23/2323) the way Mirai did, on top of light background noise —
//! then shows how the analysis pipeline surfaces the outbreak: the
//! discovery curve bends upward, Telnet share explodes, and the infected
//! population is recovered device-for-device.
//!
//! ```text
//! cargo run -p iotscope-examples --bin mirai_outbreak
//! ```

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::scan;
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
use iotscope_devicedb::{ConsumerKind, Realm};
use iotscope_net::ports::ScanService;
use iotscope_telescope::behavior::{Actor, ActorBehavior};
use iotscope_telescope::pattern::ActivityPattern;
use iotscope_telescope::{Scenario, TelescopeConfig};

fn main() {
    let seed = 0x4D31;
    let inventory = InventoryBuilder::new(SynthConfig::small(4242)).build();

    // Infect consumer routers and cameras in exponential waves: 40 on day
    // one, doubling each day (Mirai grew from hundreds to tens of
    // thousands of bots in days).
    let bots: Vec<_> = inventory
        .db
        .iter()
        .filter(|d| {
            matches!(
                d.profile.consumer_kind(),
                Some(ConsumerKind::Router | ConsumerKind::IpCamera)
            )
        })
        .take(40 + 80 + 160 + 320 + 640)
        .collect();

    let mut actors = Vec::new();
    let mut cursor = 0usize;
    for (day, wave) in [40usize, 80, 160, 320, 640].into_iter().enumerate() {
        for i in 0..wave {
            let dev = bots[cursor + i];
            actors.push(Actor {
                device: Some(dev.id),
                src_ip: dev.ip,
                behavior: ActorBehavior::TcpScan {
                    ports: ScanService::Telnet.ports().to_vec(),
                    random_port_prob: 0.0,
                },
                pattern: ActivityPattern::Steady,
                // Each bot probes ~30 addresses/hour once infected.
                budget: 30.0 * (143.0 - (day as f64) * 24.0),
                onset: day as u32 * 24 + 1,
                retire: u32::MAX,
                guarantee_onset_flow: true,
            });
        }
        cursor += wave;
    }

    // Light pre-existing background: a handful of HTTP scanners.
    for dev in inventory
        .db
        .iter()
        .filter(|d| d.realm() == Realm::Cps)
        .take(25)
    {
        actors.push(Actor {
            device: Some(dev.id),
            src_ip: dev.ip,
            behavior: ActorBehavior::TcpScan {
                ports: ScanService::Http.ports().to_vec(),
                random_port_prob: 0.0,
            },
            pattern: ActivityPattern::Steady,
            budget: 2_000.0,
            onset: 1,
            retire: u32::MAX,
            guarantee_onset_flow: true,
        });
    }

    let scenario = Scenario::new(TelescopeConfig::paper(), seed, actors);
    let traffic = scenario.generate();

    let pipeline = AnalysisPipeline::new(&inventory.db, 143);
    let analysis = pipeline
        .run(&traffic, &AnalyzeOptions::new())
        .expect("in-memory analysis")
        .analysis;

    println!("== Mirai-style outbreak, as seen from the telescope ==\n");
    println!("day | new bots discovered | telnet pkts/day | telnet share");
    let curve = analysis.discovery_curve();
    let series = scan::top5_series(&analysis);
    let mut prev = 0usize;
    #[allow(clippy::needless_range_loop)]
    for day in 0..6usize {
        let lo = day * 24;
        let hi = ((day + 1) * 24).min(143);
        let telnet: u64 = series[lo..hi].iter().map(|r| r[0]).sum();
        let all: u64 = (lo..hi)
            .map(|i| analysis.tcp_scan[0].packets[i] + analysis.tcp_scan[1].packets[i])
            .sum();
        let share = if all == 0 {
            0.0
        } else {
            100.0 * telnet as f64 / all as f64
        };
        println!(
            "{day:>3} | {:>19} | {telnet:>15} | {share:>11.1}%",
            curve[day].0 - prev,
        );
        prev = curve[day].0;
    }

    let table = scan::protocol_table(&analysis);
    println!(
        "\ntop scanned service: {} ({:.1}% of scan packets)",
        table[0].label, table[0].pct
    );
    println!(
        "inferred scanners: {} (planted: {} bots + 25 background)",
        analysis.tcp_scanners().len(),
        bots.len()
    );
    assert_eq!(analysis.tcp_scanners().len(), bots.len() + 25);
    println!("every infected device was recovered from darknet traffic alone ✔");
}
