//! Sharing telescope data without leaking identities (§VI).
//!
//! The paper plans "an authenticated API to share IoT-relevant malicious
//! empirical data … with the research community". Raw darknet traffic
//! identifies victims and compromised devices, so telescopes share
//! *prefix-preserving anonymized* traces (as CAIDA does). This example
//! shows what survives anonymization and what (deliberately) breaks:
//!
//! * port/protocol/temporal analyses — identical before and after;
//! * subnet structure — preserved (same /24 in → same /24 out);
//! * inventory correlation — destroyed (the receiving party cannot map
//!   traffic back to devices without the key).
//!
//! ```text
//! cargo run -p iotscope-examples --release --bin data_sharing
//! ```

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::scan;
use iotscope_net::anon::Anonymizer;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;

fn main() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(271828));
    let traffic = built.scenario.generate();

    // The telescope operator anonymizes before sharing.
    let anonymizer = Anonymizer::new(0xC0FF_EE00_5EC2_E7E5);
    let shared: Vec<HourTraffic> = traffic
        .iter()
        .map(|h| HourTraffic {
            interval: h.interval,
            hour: h.hour,
            flows: h
                .flows
                .iter()
                .map(|f| anonymizer.anonymize_flow(f))
                .collect(),
        })
        .collect();

    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
    let options = AnalyzeOptions::new();
    let original = pipeline
        .run(&traffic, &options)
        .expect("in-memory analysis")
        .analysis;
    let received = pipeline
        .run(&shared, &options)
        .expect("in-memory analysis")
        .analysis;

    println!("== what the receiving researcher still sees ==");
    let orig_rows = scan::protocol_table(&original);
    let recv_scan: u64 = received.unmatched_packets;
    println!(
        "original: {} scan pkts across services; top service {} at {:.1}%",
        orig_rows.iter().map(|r| r.packets).sum::<u64>(),
        orig_rows[0].label,
        orig_rows[0].pct
    );
    // Port/protocol structure survives: recompute Table V over the shared
    // trace by dst port (no inventory needed).
    let mut telnet = 0u64;
    let mut total = 0u64;
    for h in &shared {
        for f in &h.flows {
            if f.protocol == iotscope_net::protocol::TransportProtocol::Tcp
                && f.tcp_flags.is_bare_syn()
            {
                total += u64::from(f.packets);
                if matches!(f.dst_port, 23 | 2323 | 23231) {
                    telnet += u64::from(f.packets);
                }
            }
        }
    }
    println!(
        "shared:   telnet still {:.1}% of scan packets — port analyses intact",
        100.0 * telnet as f64 / total as f64
    );

    println!("\n== what anonymization removed ==");
    println!(
        "original correlation: {} devices matched, {} noise packets",
        original.device_count(),
        original.unmatched_packets
    );
    println!(
        "shared   correlation: {} devices matched, {} unmatched packets",
        received.device_count(),
        recv_scan
    );
    assert!(received.device_count() < original.device_count() / 100);

    println!("\n== subnet structure is preserved ==");
    let x = std::net::Ipv4Addr::new(100, 20, 30, 40);
    let y = std::net::Ipv4Addr::new(100, 20, 30, 99);
    let (ax, ay) = (anonymizer.anonymize(x), anonymizer.anonymize(y));
    println!("{x} and {y} (same /24)  →  {ax} and {ay}");
    assert_eq!(ax.octets()[..3], ay.octets()[..3]);
    println!("…still the same /24 after anonymization, but unrecognizable.");
    println!(
        "\nonly the key holder can reverse it: {} → {}",
        ax,
        anonymizer.de_anonymize(ax)
    );
}
