//! DoS forensics from backscatter alone.
//!
//! Plants a set of DoS attack episodes against specific IoT devices (an
//! Ethernet/IP PLC, a printer, a camera), then shows how a telescope
//! analyst reconstructs them: which hours carried attacks, who the victim
//! was, how intense each episode ran, and the victim's exposed service —
//! exactly the §IV-B investigation of the paper.
//!
//! ```text
//! cargo run -p iotscope-examples --bin dos_forensics
//! ```

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::{dos, stats};
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
use iotscope_devicedb::{ConsumerKind, CpsService, DeviceProfile};
use iotscope_telescope::behavior::{Actor, ActorBehavior};
use iotscope_telescope::pattern::ActivityPattern;
use iotscope_telescope::{Scenario, TelescopeConfig};

fn main() {
    let inventory = InventoryBuilder::new(SynthConfig::small(77)).build();

    // Pick three interesting victims from the inventory.
    let plc = inventory
        .db
        .iter()
        .find(|d| {
            d.profile
                .cps_services()
                .is_some_and(|s| s.contains(&CpsService::EthernetIp))
        })
        .expect("inventory has an Ethernet/IP device");
    let printer = inventory
        .db
        .iter()
        .find(|d| d.profile.consumer_kind() == Some(ConsumerKind::Printer))
        .expect("inventory has a printer");
    let camera = inventory
        .db
        .iter()
        .find(|d| d.profile.consumer_kind() == Some(ConsumerKind::IpCamera))
        .expect("inventory has a camera");

    // Plant the attack schedule: the PLC gets hammered twice, the printer
    // and camera once each; everyone trickles a little baseline.
    type Episode<'a> = (&'a iotscope_devicedb::IotDevice, u16, f64, Vec<(u32, f64)>);
    let mut actors = Vec::new();
    let plan: [Episode<'_>; 3] = [
        (plc, 44818, 80_000.0, vec![(10, 1.0), (11, 1.0), (90, 0.7)]),
        (printer, 9100, 25_000.0, vec![(49, 1.0)]),
        (camera, 554, 15_000.0, vec![(120, 1.0)]),
    ];
    for (dev, port, budget, spikes) in plan {
        actors.push(Actor {
            device: Some(dev.id),
            src_ip: dev.ip,
            behavior: ActorBehavior::Backscatter {
                service_port: port,
                icmp_share: 0.1,
            },
            pattern: ActivityPattern::Bursts {
                baseline: 0.001,
                spikes,
            },
            budget,
            onset: 1,
            retire: u32::MAX,
            guarantee_onset_flow: true,
        });
    }

    let scenario = Scenario::new(TelescopeConfig::paper(), 7, actors);
    let traffic = scenario.generate();
    let analysis = AnalysisPipeline::new(&inventory.db, 143)
        .run(&traffic, &AnalyzeOptions::new())
        .expect("in-memory analysis")
        .analysis;

    println!("== backscatter forensics ==\n");
    let s = dos::summary(&analysis, 10_000);
    println!(
        "victims inferred: {}  backscatter packets: {}  heavy victims: {}\n",
        s.victims, s.packets, s.heavy_victims
    );

    println!("detected attack episodes:");
    for e in dos::detect_spikes(&analysis, 8.0) {
        let dev = inventory.db.device(e.victim);
        let service = match &dev.profile {
            DeviceProfile::Cps(sv) => sv[0].to_string(),
            DeviceProfile::Consumer(k) => k.to_string(),
        };
        println!(
            "  interval {:>3}: {:>7} pkts — victim {} [{} in {}], {:.0}% from that single device",
            e.interval,
            e.total,
            dev.ip,
            service,
            dev.country.name(),
            100.0 * e.victim_share
        );
    }

    // Per-victim intensity distribution (the Fig 6 view).
    let (_, backscatter_cdf) = iotscope_core::characterize::packet_cdfs(&analysis);
    println!(
        "\nper-victim backscatter: median={:.0} max={:.0}",
        backscatter_cdf.quantile(0.5).unwrap_or(0.0),
        backscatter_cdf.quantile(1.0).unwrap_or(0.0)
    );

    // Was the PLC attacked harder than the consumer devices? (The paper's
    // Mann-Whitney on hourly backscatter, CPS vs consumer.)
    if let Some(mw) = dos::backscatter_realm_test(&analysis) {
        println!(
            "hourly backscatter consumer-vs-CPS Mann-Whitney: Z={:.2}, p={:.2e} — {}",
            mw.z,
            mw.p_value,
            if mw.p_value < 0.05 {
                "CPS victims attacked significantly harder"
            } else {
                "no significant realm difference"
            }
        );
    }
    let med = |v: &[u64]| stats::mean(&v.iter().map(|x| *x as f64).collect::<Vec<_>>());
    println!(
        "mean hourly backscatter: CPS {:.0} vs consumer {:.0}",
        med(dos::hourly(&analysis, iotscope_devicedb::Realm::Cps)),
        med(dos::hourly(&analysis, iotscope_devicedb::Realm::Consumer)),
    );
}
