//! Quickstart: simulate a darknet, infer compromised IoT devices, print
//! the headline report.
//!
//! ```text
//! cargo run -p iotscope-examples --bin quickstart
//! ```

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::report::{Report, ReportContext};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn main() {
    // 1. Build a small paper-calibrated world: a synthetic IoT inventory
    //    plus a 143-hour darknet traffic scenario.
    let built = PaperScenario::build(PaperScenarioConfig::tiny(2017));
    println!(
        "inventory: {} devices ({} designated compromised)",
        built.inventory.db.len(),
        built.truth.num_designated(),
    );

    // 2. Generate the telescope's flowtuple stream.
    let traffic = built.scenario.generate();
    let flows: usize = traffic.iter().map(|h| h.flows.len()).sum();
    println!(
        "telescope captured {flows} flows over {} hours",
        traffic.len()
    );

    // 3. Correlate against the inventory and characterize.
    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
    let outcome = pipeline
        .run(&traffic, &AnalyzeOptions::new().threads(4))
        .expect("in-memory analysis");

    // 4. Print every table and figure the paper reports.
    let report = Report::build(&ReportContext {
        analysis: &outcome.analysis,
        db: &built.inventory.db,
        isps: &built.inventory.isps,
        intel: None,
    });
    println!("{}", report.render());
}
