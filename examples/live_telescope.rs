//! A live telescope operations console (§VI/§VII follow-ups combined).
//!
//! Streams the 143-hour window hour-by-hour through the near-real-time
//! analyzer, printing alerts as they fire; afterwards it runs the three
//! investigation follow-ups over the accumulated traffic:
//!
//! 1. fuzzy fingerprinting — unindexed sources that behave like IoT;
//! 2. botnet clustering — synchronized scanning crews;
//! 3. malware attribution — family attribution with evidence.
//!
//! ```text
//! cargo run -p iotscope-examples --release --bin live_telescope
//! ```

use iotscope_core::behavior;
use iotscope_core::botnet::{self, BotnetConfig};
use iotscope_core::fingerprint::{candidate_iot_devices, FingerprintModel};
use iotscope_core::stream::{Alert, StreamConfig, StreamingAnalyzer};
use iotscope_core::{attribution, malicious};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn main() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(31415));
    println!(
        "telescope online: {} inventory devices, {} planted shadow devices, {} planted botnets\n",
        built.inventory.db.len(),
        built.truth.shadow_iot.len(),
        built.truth.botnets.len()
    );

    // ---- phase 1: streaming watch ---------------------------------------
    println!("== streaming watch (alerts as hours arrive) ==");
    let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
    let mut traffic = Vec::with_capacity(143);
    let mut printed = 0usize;
    for i in 1..=143u32 {
        let hour = built.scenario.generate_hour(i);
        for alert in stream.push_hour(&hour) {
            match alert {
                Alert::NewDevices { .. } => {} // too chatty for a console
                Alert::DosSpike {
                    interval,
                    packets,
                    factor,
                    victim,
                } => {
                    let who = victim
                        .map(|(d, share)| format!("dev#{} ({:.0}%)", d.0, 100.0 * share))
                        .unwrap_or_else(|| "unknown".into());
                    println!("  [h{interval:>3}] DoS spike: {packets} pkts ({factor:.1}x baseline) victim {who}");
                    printed += 1;
                }
                Alert::ScanSurge {
                    interval,
                    service,
                    packets,
                    factor,
                } => {
                    println!(
                        "  [h{interval:>3}] scan surge: {service} {packets} pkts ({factor:.1}x)"
                    );
                    printed += 1;
                }
                Alert::PortSweep {
                    interval,
                    realm,
                    ports,
                    factor,
                } => {
                    println!("  [h{interval:>3}] port sweep: {realm} hit {ports} distinct ports ({factor:.1}x)");
                    printed += 1;
                }
                Alert::ScoreEscalation {
                    interval,
                    device,
                    tier,
                    points,
                } => {
                    // Only fires when an intel index is attached via
                    // `with_intel`; this example streams without one.
                    println!(
                        "  [h{interval:>3}] score escalation: dev#{} now {tier} ({points} pts)",
                        device.0
                    );
                    printed += 1;
                }
            }
        }
        traffic.push(hour);
    }
    let (analysis, alerts) = stream.finish();
    println!(
        "  … {printed} operational alerts shown, {} total (incl. discovery); {} devices indexed\n",
        alerts.len(),
        analysis.device_count()
    );

    // ---- phase 2: fingerprint unindexed IoT ------------------------------
    println!("== fingerprinting unindexed IoT devices ==");
    let vectors = behavior::extract(&traffic, &built.inventory.db, 143);
    let model = FingerprintModel::train(&vectors).expect("matched devices exist");
    let candidates = candidate_iot_devices(&model, &vectors, 0.55, 20);
    println!(
        "  model: {} reference groups from {} devices",
        model.num_groups(),
        model.trained_on()
    );
    let planted: std::collections::HashSet<_> = built.truth.shadow_iot.iter().collect();
    for c in candidates.iter().take(8) {
        let verdict = if planted.contains(&c.ip) {
            "planted shadow device ✔"
        } else {
            "(other)"
        };
        println!(
            "  {:<16} score {:.2} {:>8} pkts  {verdict}",
            c.ip, c.score, c.packets
        );
    }
    println!(
        "  flagged {} candidates; {} of {} planted shadow devices recovered\n",
        candidates.len(),
        candidates
            .iter()
            .filter(|c| planted.contains(&c.ip))
            .count(),
        planted.len()
    );

    // ---- phase 3: botnet clustering --------------------------------------
    println!("== botnet clustering ==");
    let clusters = botnet::cluster(&vectors, &BotnetConfig::default());
    for (i, c) in clusters.iter().enumerate() {
        println!(
            "  cluster {}: {} members, signature ports {:?}, peak at hour {}, {} pkts",
            i + 1,
            c.size(),
            c.signature_ports,
            c.peak_interval,
            c.total_packets
        );
    }
    println!(
        "  (planted: {} coordinated crews)\n",
        built.truth.botnets.len()
    );

    // ---- phase 4: malware attribution ------------------------------------
    println!("== malware attribution ==");
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(31415)).build(&built.inventory.db, &candidates);
    let findings = attribution::attribute(
        &vectors,
        &built.inventory.db,
        &intel.malware,
        &intel.resolver,
        attribution::DEFAULT_MIN_SCORE,
    );
    for f in findings.iter().take(8) {
        println!(
            "  dev#{:<6} → {:<10} score {:.2}  direct={} port-overlap={:?}",
            f.device.0,
            f.family.to_string(),
            f.score,
            f.evidence.direct_contact,
            f.evidence.port_overlap
        );
    }
    println!("  {} attributions total", findings.len());
}
