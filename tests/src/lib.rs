//! Integration test crate for the iotscope workspace; see tests/tests/.
