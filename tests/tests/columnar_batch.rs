//! The columnar batched path (block-at-a-time decode + sorted-column
//! merge-join correlation + `FlowSink::visit_block`) must be
//! bit-identical to the per-record reference: full `Analysis` equality
//! and `stable_only()` metric snapshots, sequentially and sharded, over
//! v1/v2/v3 and segmented stores, with quarantined corrupt blocks
//! included.

use iotscope_core::analysis::{Analysis, Analyzer};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_net::store::{
    encode_hour, encode_hour_v1, DecodeOptions, FlowStore, StoreFormat, StoreOptions,
};
use iotscope_net::time::UnixHour;
use iotscope_obs::Registry;
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotscope-colb-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shared scenario plus the per-record in-memory reference analysis
/// every store-backed batched run must reproduce exactly.
struct Shared {
    built: BuiltScenario,
    traffic: Vec<HourTraffic>,
    reference: Analysis,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic = built.scenario.generate();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        // In-memory ingest correlates per record — the reference the
        // columnar merge-join paths are pinned to.
        let reference = pipeline
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        Shared {
            built,
            traffic,
            reference,
        }
    })
}

/// Write the shared scenario into a fresh store of the given shape and
/// return it (`segment_hours` folds per-hour files into segments).
fn build_store(
    name: &str,
    options: StoreOptions,
    v1: bool,
    segment_hours: Option<usize>,
) -> FlowStore {
    let sh = shared();
    let dir = tmpdir(name);
    let store = FlowStore::create(&dir, options).unwrap();
    if v1 {
        for hour in &sh.traffic {
            let bytes = encode_hour_v1(hour.hour, &hour.flows, options);
            let path = store.hour_path(hour.hour);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, bytes).unwrap();
        }
    } else {
        sh.built.scenario.write_to_store(&store).unwrap();
    }
    if let Some(h) = segment_hours {
        store.compact_to_segments(h).unwrap();
    }
    store
}

#[test]
fn batched_paths_match_per_record_reference_across_formats() {
    let sh = shared();
    let window = sh.built.scenario.telescope().window;
    let pipeline = AnalysisPipeline::new(&sh.built.inventory.db, window.num_hours());

    let stores: Vec<(&str, FlowStore)> = vec![
        (
            "v3-delta",
            build_store("v3d", StoreOptions::default(), false, None),
        ),
        (
            "v3-plain",
            build_store(
                "v3p",
                StoreOptions {
                    delta_encode: false,
                    ..StoreOptions::default()
                },
                false,
                None,
            ),
        ),
        (
            "v2",
            build_store(
                "v2",
                StoreOptions {
                    format: StoreFormat::V2,
                    ..StoreOptions::default()
                },
                false,
                None,
            ),
        ),
        ("v1", build_store("v1", StoreOptions::default(), true, None)),
        (
            "segmented",
            build_store("seg", StoreOptions::default(), false, Some(7)),
        ),
    ];

    for (name, store) in &stores {
        // Sequential (columnar visit path) and sharded (routers with the
        // batched visit_block) both reproduce the per-record reference —
        // full-struct equality, not per-field spot checks.
        let seq_registry = Registry::new();
        let seq = pipeline
            .run(
                store,
                &AnalyzeOptions::new().window(window).metrics(&seq_registry),
            )
            .unwrap();
        assert!(seq.dropped_days.is_empty(), "{name}");
        assert_eq!(seq.analysis, sh.reference, "{name} sequential");

        let shard_registry = Registry::new();
        let sharded = pipeline
            .run(
                store,
                &AnalyzeOptions::new()
                    .window(window)
                    .threads(4)
                    .metrics(&shard_registry),
            )
            .unwrap();
        assert_eq!(sharded.analysis, sh.reference, "{name} sharded");
        assert_eq!(
            seq_registry.snapshot().stable_only(),
            shard_registry.snapshot().stable_only(),
            "{name} stable metrics"
        );
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}

/// Pick a busy hour and inflate it past two v3 blocks so block-level
/// behavior (and quarantine) is observable.
fn multi_block_hour() -> (u32, UnixHour, Vec<iotscope_net::flowtuple::FlowTuple>) {
    let sh = shared();
    let busy = sh
        .traffic
        .iter()
        .max_by_key(|h| h.flows.len())
        .expect("scenario has hours");
    let mut flows = Vec::new();
    while flows.len() < 2 * 4096 + 100 {
        flows.extend_from_slice(&busy.flows);
    }
    (busy.interval, busy.hour, flows)
}

#[test]
fn quarantined_corrupt_blocks_fold_identically_batched_and_per_record() {
    let sh = shared();
    let db = &sh.built.inventory.db;
    let (interval, hour, flows) = multi_block_hour();
    let mut bytes = encode_hour(hour, &flows, StoreOptions::default());
    // The file tail is inside the last block's payload: flipping it
    // corrupts exactly one block, leaving header and index intact.
    let last = bytes.len() - 2;
    bytes[last] ^= 0xff;

    let dir = tmpdir("quarantine");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    let path = store.hour_path(hour);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, &bytes).unwrap();

    // Per-record reference: tolerant materialized read, then the
    // record-at-a-time ingest.
    let decoded = store.read_hour_tolerant(hour, 1).unwrap();
    assert_eq!(decoded.quarantined.len(), 1, "exactly one block corrupt");
    let mut reference = Analyzer::new(db, 143);
    reference.ingest_hour(&HourTraffic {
        interval,
        hour,
        flows: decoded.flows.clone(),
    });
    let reference = reference.finish();

    // Batched columnar visit with quarantine (threads = 1) and the
    // parallel record-at-a-time visit (threads = 2) must both match.
    for threads in [1usize, 2] {
        let mut analyzer = Analyzer::new(db, 143);
        let mut ingest = analyzer.begin_hour(interval);
        let visited = store
            .visit_hour_for(
                hour,
                &bytes,
                DecodeOptions {
                    threads,
                    quarantine: true,
                },
                &mut ingest,
            )
            .unwrap();
        ingest.finish();
        assert_eq!(
            visited.quarantined, decoded.quarantined,
            "threads={threads}"
        );
        assert_eq!(analyzer.finish(), reference, "threads={threads}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any thread count over any store shape reproduces the per-record
    /// reference analysis through the batched visit path.
    #[test]
    fn prop_batched_store_analysis_matches_reference(
        threads in 0usize..48,
        segmented in any::<bool>(),
        seg_hours in 2usize..12,
    ) {
        let sh = shared();
        let window = sh.built.scenario.telescope().window;
        let pipeline = AnalysisPipeline::new(&sh.built.inventory.db, window.num_hours());
        let store = build_store(
            &format!("prop-{threads}-{segmented}-{seg_hours}"),
            StoreOptions::default(),
            false,
            segmented.then_some(seg_hours),
        );
        let outcome = pipeline
            .run(&store, &AnalyzeOptions::new().window(window).threads(threads))
            .unwrap();
        prop_assert!(outcome.dropped_days.is_empty());
        prop_assert_eq!(&outcome.analysis, &sh.reference);
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
