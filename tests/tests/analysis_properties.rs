//! Property tests for the columnar analysis model: the merge operation
//! must form a commutative monoid over disjoint hour partitions, and
//! every memoized [`AnalysisView`] query must equal a brute-force
//! recomputation from the raw per-device rows.

use iotscope_core::analysis::{Analysis, Analyzer};
use iotscope_core::TrafficClass;
use iotscope_devicedb::{DeviceId, Realm};
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared 143-hour scenario (generated once; the property tests
/// below only re-partition its hours, never regenerate traffic).
fn shared() -> &'static (BuiltScenario, Vec<HourTraffic>) {
    static SHARED: OnceLock<(BuiltScenario, Vec<HourTraffic>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic = built.scenario.generate();
        (built, traffic)
    })
}

fn num_hours() -> u32 {
    let (built, _) = shared();
    built.scenario.telescope().window.num_hours()
}

/// Analyze one disjoint slice of hours into a partial `Analysis`.
fn partial(hour_indices: &[usize]) -> Analysis {
    let (built, traffic) = shared();
    let mut an = Analyzer::new(&built.inventory.db, num_hours());
    for &i in hour_indices {
        an.ingest_hour(&traffic[i]);
    }
    // Partials are merged further, so keep them un-normalized the way
    // the parallel pipeline does: peek-equivalent state via resume.
    an.finish()
}

fn merged(parts: Vec<Analysis>) -> Analysis {
    let (built, _) = shared();
    let mut iter = parts.into_iter();
    let first = iter.next().expect("at least one partial");
    let mut acc = Analyzer::resume(&built.inventory.db, first);
    for p in iter {
        acc.merge(Analyzer::resume(&built.inventory.db, p));
    }
    acc.finish()
}

/// Strategy: a random partition of `0..n` hours into `k` disjoint
/// groups (some possibly empty), as the group index of each hour.
fn partition_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(0..k, n).prop_map(move |assignment| {
        let mut groups = vec![Vec::new(); k];
        for (hour, &g) in assignment.iter().enumerate() {
            groups[g].push(hour);
        }
        groups
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merging disjoint hour partitions is commutative: any order of the
    /// same partials produces the same finished analysis.
    #[test]
    fn prop_merge_is_commutative(
        groups in partition_strategy(143, 3),
        perm in Just([1usize, 2, 0]),
    ) {
        let parts: Vec<Analysis> = groups.iter().map(|g| partial(g)).collect();
        let forward = merged(parts.clone());
        let permuted: Vec<Analysis> = perm.iter().map(|&i| parts[i].clone()).collect();
        let backward = merged(permuted);
        prop_assert_eq!(forward, backward);
    }

    /// Merging is associative: ((a∪b)∪c) == (a∪(b∪c)), and both equal
    /// the sequential single-analyzer pass over all hours.
    #[test]
    fn prop_merge_is_associative_and_matches_sequential(
        groups in partition_strategy(143, 3),
    ) {
        let a = partial(&groups[0]);
        let b = partial(&groups[1]);
        let c = partial(&groups[2]);

        let left = merged(vec![merged(vec![a.clone(), b.clone()]), c.clone()]);
        let right = merged(vec![a, merged(vec![b, c])]);
        prop_assert_eq!(&left, &right);

        let all: Vec<usize> = (0..143).collect();
        let sequential = partial(&all);
        prop_assert_eq!(&left, &sequential);
        prop_assert_eq!(left.devices.ids(), sequential.devices.ids());
    }

    /// Every memoized view query equals a brute-force recomputation
    /// from the raw device rows, on an arbitrary subset of hours.
    #[test]
    fn prop_views_equal_brute_force(groups in partition_strategy(143, 2)) {
        let analysis = partial(&groups[0]);
        let view = analysis.view();

        // compromised == all row ids, sorted.
        let mut ids: Vec<DeviceId> =
            analysis.devices.rows().map(|o| o.device).collect();
        ids.sort_unstable();
        prop_assert_eq!(view.compromised(), &ids[..]);

        // Per-class cohorts.
        for class in TrafficClass::ALL {
            let mut brute: Vec<DeviceId> = analysis
                .devices
                .rows()
                .filter(|o| o.packets(class) > 0)
                .map(|o| o.device)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(view.cohort(class), &brute[..], "class={:?}", class);
        }
        prop_assert_eq!(view.dos_victims(), view.cohort(TrafficClass::Backscatter));
        prop_assert_eq!(view.tcp_scanners(), view.cohort(TrafficClass::TcpScan));
        prop_assert_eq!(view.udp_devices(), view.cohort(TrafficClass::Udp));

        // Scanners: TCP SYN or ICMP echo.
        let mut scanners: Vec<DeviceId> = analysis
            .devices
            .rows()
            .filter(|o| o.scan_packets() > 0)
            .map(|o| o.device)
            .collect();
        scanners.sort_unstable();
        prop_assert_eq!(view.scanners(), &scanners[..]);

        // Realm partitions + counts.
        for realm in [Realm::Consumer, Realm::Cps] {
            let mut brute: Vec<DeviceId> = analysis
                .devices
                .rows()
                .filter(|o| o.realm == realm)
                .map(|o| o.device)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(view.realm_devices(realm), &brute[..], "realm={:?}", realm);
        }
        let consumer = analysis
            .devices
            .rows()
            .filter(|o| o.realm == Realm::Consumer)
            .count();
        prop_assert_eq!(
            view.realm_counts(),
            (consumer, analysis.device_count() - consumer)
        );

        // Total packets.
        let total: u64 = analysis.devices.rows().map(|o| o.total_packets()).sum();
        prop_assert_eq!(view.total_packets(), total);

        // The legacy accessor shims route through the same cache.
        prop_assert_eq!(&analysis.compromised_devices()[..], view.compromised());
        prop_assert_eq!(&analysis.dos_victims()[..], view.dos_victims());
        prop_assert_eq!(&analysis.tcp_scanners()[..], view.tcp_scanners());
        prop_assert_eq!(&analysis.udp_devices()[..], view.udp_devices());
        prop_assert_eq!(analysis.compromised_counts(), view.realm_counts());
        prop_assert_eq!(analysis.total_packets(), view.total_packets());
    }
}

/// A cloned analysis starts with a cold cache but answers identically.
#[test]
fn cloned_analysis_recomputes_identical_views() {
    let all: Vec<usize> = (0..143).collect();
    let analysis = partial(&all);
    // Warm the original's cache first.
    let warm = analysis.view().compromised().to_vec();
    let clone = analysis.clone();
    assert_eq!(clone.view().compromised(), &warm[..]);
    assert_eq!(clone.view().realm_counts(), analysis.view().realm_counts());
    assert_eq!(clone, analysis);
}
