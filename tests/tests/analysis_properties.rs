//! Property tests for the columnar analysis model: the merge operation
//! must form a commutative monoid over disjoint hour partitions, and
//! every memoized [`AnalysisView`] query must equal a brute-force
//! recomputation from the raw per-device rows.

use iotscope_core::analysis::{Analysis, Analyzer};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::shard::{assemble, ShardAccumulator, ShardRouter};
use iotscope_core::TrafficClass;
use iotscope_devicedb::{DeviceId, Realm, ShardMap};
use iotscope_net::store::{decode_hour_visit, encode_hour, DecodeOptions, StoreOptions};
use iotscope_net::time::UnixHour;
use iotscope_obs::Registry;
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared 143-hour scenario (generated once; the property tests
/// below only re-partition its hours, never regenerate traffic).
fn shared() -> &'static (BuiltScenario, Vec<HourTraffic>) {
    static SHARED: OnceLock<(BuiltScenario, Vec<HourTraffic>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic = built.scenario.generate();
        (built, traffic)
    })
}

fn num_hours() -> u32 {
    let (built, _) = shared();
    built.scenario.telescope().window.num_hours()
}

/// Analyze one disjoint slice of hours into a partial `Analysis`.
fn partial(hour_indices: &[usize]) -> Analysis {
    let (built, traffic) = shared();
    let mut an = Analyzer::new(&built.inventory.db, num_hours());
    for &i in hour_indices {
        an.ingest_hour(&traffic[i]);
    }
    // Partials are merged further, so keep them un-normalized the way
    // the parallel pipeline does: peek-equivalent state via resume.
    an.finish()
}

fn merged(parts: Vec<Analysis>) -> Analysis {
    let (built, _) = shared();
    let mut iter = parts.into_iter();
    let first = iter.next().expect("at least one partial");
    let mut acc = Analyzer::resume(&built.inventory.db, first);
    for p in iter {
        acc.merge(Analyzer::resume(&built.inventory.db, p));
    }
    acc.finish()
}

/// Strategy: a random partition of `0..n` hours into `k` disjoint
/// groups (some possibly empty), as the group index of each hour.
fn partition_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(0..k, n).prop_map(move |assignment| {
        let mut groups = vec![Vec::new(); k];
        for (hour, &g) in assignment.iter().enumerate() {
            groups[g].push(hour);
        }
        groups
    })
}

/// The sequential reference over all 143 hours, computed once.
fn sequential_full() -> &'static Analysis {
    static SEQ: OnceLock<Analysis> = OnceLock::new();
    SEQ.get_or_init(|| {
        let all: Vec<usize> = (0..143).collect();
        partial(&all)
    })
}

/// The stable metric snapshot of a single-threaded pipeline run over
/// the full traffic, computed once — the reference every sharded run's
/// stable counters must reproduce.
fn sequential_stable() -> &'static iotscope_obs::Snapshot {
    static SNAP: OnceLock<iotscope_obs::Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let (built, traffic) = shared();
        let registry = Registry::new();
        AnalysisPipeline::new(&built.inventory.db, num_hours())
            .run(traffic, &AnalyzeOptions::new().metrics(&registry))
            .unwrap();
        registry.snapshot().stable_only()
    })
}

/// Route the shared traffic through `groups.len()` routers (each owning
/// the hour indices of its group) into `shards` shard accumulators, and
/// assemble the final analysis — the hand-driven equivalent of the
/// pipeline's sharded mode.
fn sharded_by_hand(groups: &[Vec<usize>], shards: usize) -> Analysis {
    let (built, traffic) = shared();
    let db = &built.inventory.db;
    let hours = num_hours();
    let map = ShardMap::new(db.len(), shards);
    let mut accs: Vec<ShardAccumulator> = (0..shards)
        .map(|s| ShardAccumulator::new(hours, map.range(s)))
        .collect();
    let mut parts = Vec::new();
    for group in groups {
        let mut router = ShardRouter::new(db, hours, map);
        for &i in group {
            let hour = &traffic[i];
            router.begin_hour(hour.interval);
            router.route(&hour.flows);
            for (s, flows) in router.finish_hour().into_iter().enumerate() {
                accs[s].apply_hour(hour.interval, &flows);
            }
        }
        parts.push(router.into_partial());
    }
    assemble(hours, parts, accs.into_iter().map(|a| a.finish()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merging disjoint hour partitions is commutative: any order of the
    /// same partials produces the same finished analysis.
    #[test]
    fn prop_merge_is_commutative(
        groups in partition_strategy(143, 3),
        perm in Just([1usize, 2, 0]),
    ) {
        let parts: Vec<Analysis> = groups.iter().map(|g| partial(g)).collect();
        let forward = merged(parts.clone());
        let permuted: Vec<Analysis> = perm.iter().map(|&i| parts[i].clone()).collect();
        let backward = merged(permuted);
        prop_assert_eq!(forward, backward);
    }

    /// Merging is associative: ((a∪b)∪c) == (a∪(b∪c)), and both equal
    /// the sequential single-analyzer pass over all hours.
    #[test]
    fn prop_merge_is_associative_and_matches_sequential(
        groups in partition_strategy(143, 3),
    ) {
        let a = partial(&groups[0]);
        let b = partial(&groups[1]);
        let c = partial(&groups[2]);

        let left = merged(vec![merged(vec![a.clone(), b.clone()]), c.clone()]);
        let right = merged(vec![a, merged(vec![b, c])]);
        prop_assert_eq!(&left, &right);

        let all: Vec<usize> = (0..143).collect();
        let sequential = partial(&all);
        prop_assert_eq!(&left, &sequential);
        prop_assert_eq!(left.devices.ids(), sequential.devices.ids());
    }

    /// Every memoized view query equals a brute-force recomputation
    /// from the raw device rows, on an arbitrary subset of hours.
    #[test]
    fn prop_views_equal_brute_force(groups in partition_strategy(143, 2)) {
        let analysis = partial(&groups[0]);
        let view = analysis.view();

        // compromised == all row ids, sorted.
        let mut ids: Vec<DeviceId> =
            analysis.devices.rows().map(|o| o.device).collect();
        ids.sort_unstable();
        prop_assert_eq!(view.compromised(), &ids[..]);

        // Per-class cohorts.
        for class in TrafficClass::ALL {
            let mut brute: Vec<DeviceId> = analysis
                .devices
                .rows()
                .filter(|o| o.packets(class) > 0)
                .map(|o| o.device)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(view.cohort(class), &brute[..], "class={:?}", class);
        }
        prop_assert_eq!(view.dos_victims(), view.cohort(TrafficClass::Backscatter));
        prop_assert_eq!(view.tcp_scanners(), view.cohort(TrafficClass::TcpScan));
        prop_assert_eq!(view.udp_devices(), view.cohort(TrafficClass::Udp));

        // Scanners: TCP SYN or ICMP echo.
        let mut scanners: Vec<DeviceId> = analysis
            .devices
            .rows()
            .filter(|o| o.scan_packets() > 0)
            .map(|o| o.device)
            .collect();
        scanners.sort_unstable();
        prop_assert_eq!(view.scanners(), &scanners[..]);

        // Realm partitions + counts.
        for realm in [Realm::Consumer, Realm::Cps] {
            let mut brute: Vec<DeviceId> = analysis
                .devices
                .rows()
                .filter(|o| o.realm == realm)
                .map(|o| o.device)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(view.realm_devices(realm), &brute[..], "realm={:?}", realm);
        }
        let consumer = analysis
            .devices
            .rows()
            .filter(|o| o.realm == Realm::Consumer)
            .count();
        prop_assert_eq!(
            view.realm_counts(),
            (consumer, analysis.device_count() - consumer)
        );

        // Total packets.
        let total: u64 = analysis.devices.rows().map(|o| o.total_packets()).sum();
        prop_assert_eq!(view.total_packets(), total);

        // The legacy accessor shims route through the same cache.
        prop_assert_eq!(&analysis.compromised_devices()[..], view.compromised());
        prop_assert_eq!(&analysis.dos_victims()[..], view.dos_victims());
        prop_assert_eq!(&analysis.tcp_scanners()[..], view.tcp_scanners());
        prop_assert_eq!(&analysis.udp_devices()[..], view.udp_devices());
        prop_assert_eq!(analysis.compromised_counts(), view.realm_counts());
        prop_assert_eq!(analysis.total_packets(), view.total_packets());
    }

    /// Device-sharded analysis is *bit-identical* to the sequential
    /// pass: full structural equality of the assembled [`Analysis`]
    /// (including the concatenated device-table row order) for any
    /// assignment of hours to routers and any shard count 1..=8, and
    /// the pipeline's sharded mode reproduces the sequential stable
    /// metric snapshot exactly.
    #[test]
    fn prop_sharded_is_bit_identical_to_sequential(
        shards in 1usize..=8,
        routers in 1usize..=4,
        assignment in partition_strategy(143, 4),
    ) {
        // Fold the fixed-width partition down to `routers` groups, so
        // the router count varies without a dependent strategy.
        let mut groups = vec![Vec::new(); routers];
        for (g, hours) in assignment.into_iter().enumerate() {
            groups[g % routers].extend(hours);
        }
        let sequential = sequential_full();
        let sharded = sharded_by_hand(&groups, shards);
        prop_assert_eq!(&sharded, sequential, "shards={} routers={}", shards, groups.len());
        // PartialEq on DeviceTable ignores row order; pin it down too —
        // ascending-shard concatenation must yield the sorted table.
        prop_assert_eq!(sharded.devices.ids(), sequential.devices.ids());

        let (built, traffic) = shared();
        let registry = Registry::new();
        AnalysisPipeline::new(&built.inventory.db, num_hours())
            .run(
                traffic,
                &AnalyzeOptions::new().threads(shards.max(2)).metrics(&registry),
            )
            .unwrap();
        prop_assert_eq!(
            &registry.snapshot().stable_only(),
            sequential_stable(),
            "stable metrics drift in sharded mode at threads={}",
            shards.max(2)
        );
    }

    /// Sharded and sequential sinks quarantine identically: when corrupt
    /// blocks are dropped by a quarantining decode, both paths see the
    /// same surviving flows and still produce bit-identical analyses.
    #[test]
    fn prop_sharded_quarantine_matches_sequential(
        hour_seed in 0u64..1_000,
        corrupt in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..4),
        shards in 1usize..=8,
    ) {
        let (built, traffic) = shared();
        let db = &built.inventory.db;
        let hours = num_hours();
        // Encode two real hours, then corrupt payload bytes of the
        // second so a quarantining decode drops some blocks.
        let clean = &traffic[(hour_seed % 143) as usize];
        let victim = &traffic[((hour_seed + 71) % 143) as usize];
        let clean_bytes =
            encode_hour(UnixHour::new(900_000), &clean.flows, StoreOptions::default());
        let mut victim_bytes =
            encode_hour(UnixHour::new(900_001), &victim.flows, StoreOptions::default());
        // IOTFT03 layout mirror (see fused_streaming.rs): flip only
        // payload bytes so the header and block index stay intact.
        const HEADER: usize = 7 + 1 + 8 + 4 + 8;
        const INDEX_ENTRY: usize = 4 + 4 + 8;
        let total_blocks = victim.flows.len().div_ceil(iotscope_net::store::BLOCK_RECORDS);
        let index_end = HEADER + 4 + total_blocks * INDEX_ENTRY;
        prop_assume!(index_end < victim_bytes.len());
        let payload = victim_bytes.len() - index_end;
        for &(pos, mask) in &corrupt {
            victim_bytes[index_end + pos as usize % payload] ^= mask | 1;
        }
        let opts = DecodeOptions { threads: 1, quarantine: true };

        let mut seq = Analyzer::new(db, hours);
        for (interval, bytes) in [(clean.interval, &clean_bytes), (victim.interval, &victim_bytes)] {
            let mut ingest = seq.begin_hour(interval);
            decode_hour_visit(bytes, opts, &mut ingest).expect("quarantining decode succeeds");
            ingest.finish();
        }
        let sequential = seq.finish();

        let map = ShardMap::new(db.len(), shards);
        let mut accs: Vec<ShardAccumulator> = (0..shards)
            .map(|s| ShardAccumulator::new(hours, map.range(s)))
            .collect();
        let mut router = ShardRouter::new(db, hours, map);
        for (interval, bytes) in [(clean.interval, &clean_bytes), (victim.interval, &victim_bytes)] {
            router.begin_hour(interval);
            decode_hour_visit(bytes, opts, &mut router).expect("quarantining decode succeeds");
            for (s, flows) in router.finish_hour().into_iter().enumerate() {
                accs[s].apply_hour(interval, &flows);
            }
        }
        let sharded = assemble(
            hours,
            vec![router.into_partial()],
            accs.into_iter().map(|a| a.finish()).collect(),
        );
        prop_assert_eq!(sharded, sequential, "shards={}", shards);
    }
}

/// A cloned analysis starts with a cold cache but answers identically.
#[test]
fn cloned_analysis_recomputes_identical_views() {
    let all: Vec<usize> = (0..143).collect();
    let analysis = partial(&all);
    // Warm the original's cache first.
    let warm = analysis.view().compromised().to_vec();
    let clone = analysis.clone();
    assert_eq!(clone.view().compromised(), &warm[..]);
    assert_eq!(clone.view().realm_counts(), analysis.view().realm_counts());
    assert_eq!(clone, analysis);
}
