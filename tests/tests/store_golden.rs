//! Golden-file compatibility for the flowtuple store formats.
//!
//! One fixed set of flows is checked into `fixtures/golden/` encoded in
//! every format the store has ever written (v1, v2, v3). Each file must
//! keep decoding to exactly the same records, and each encoder must
//! keep reproducing its fixture byte for byte — so a codec change that
//! would orphan archived telescope data fails here instead of in the
//! field.
//!
//! To regenerate after an *intentional* format change:
//! `cargo test -p iotscope-tests --test store_golden -- --ignored regenerate`

use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::{IcmpType, TcpFlags};
use iotscope_net::store::{
    decode_hour_with, encode_hour, encode_hour_v1, DecodeOptions, StoreFormat, StoreOptions,
};
use iotscope_net::time::UnixHour;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// The fixture hour (2017-04-12 00:00 UTC, the paper window's first day).
const HOUR: u64 = 414_456;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden")
}

/// The golden record set: deterministic (xorshift, fixed seed), shaped
/// like telescope traffic (a few sources scanning many dark addresses),
/// and large enough to exercise several v3 blocks (> 2 × 4096 records).
/// MUST NOT change — the committed fixtures are derived from it.
fn golden_flows() -> Vec<FlowTuple> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..10_000u32)
        .map(|i| {
            let r = next();
            let src = Ipv4Addr::from(0x0a00_0000 | (i % 61));
            let dst = Ipv4Addr::from(0x2c00_0000 | (r as u32 & 0x00ff_ffff));
            match i % 10 {
                0 => FlowTuple::udp(
                    src,
                    dst,
                    1024 + (r >> 24) as u16 % 50_000,
                    53 + (i % 7) as u16,
                )
                .with_packets(1 + (r >> 32) as u32 % 9),
                1 => FlowTuple::icmp(src, dst, IcmpType::EchoRequest).with_ttl((r >> 40) as u8),
                _ => FlowTuple::tcp(
                    src,
                    dst,
                    1024 + (r >> 24) as u16 % 50_000,
                    if i % 3 == 0 { 23 } else { 2323 },
                    TcpFlags::SYN,
                )
                .with_packets(1 + (r >> 32) as u32 % 4)
                .with_ttl(32 + ((r >> 40) as u8 % 4) * 32),
            }
        })
        .collect()
}

/// What every fixture must decode to: delta encoding sorts records by
/// (src, dst, dst_port), identically in all three formats.
fn expected_flows() -> Vec<FlowTuple> {
    let mut flows = golden_flows();
    flows.sort_by_key(|f| (f.src_ip, f.dst_ip, f.dst_port));
    flows
}

type Encoder = fn(UnixHour, &[FlowTuple]) -> Vec<u8>;

fn encoders() -> [(&'static str, Encoder); 3] {
    [
        ("hour-v1.ft", |h, f| {
            encode_hour_v1(h, f, StoreOptions::default())
        }),
        ("hour-v2.ft", |h, f| {
            encode_hour(
                h,
                f,
                StoreOptions {
                    format: StoreFormat::V2,
                    ..StoreOptions::default()
                },
            )
        }),
        ("hour-v3.ft", |h, f| {
            encode_hour(
                h,
                f,
                StoreOptions {
                    format: StoreFormat::V3,
                    ..StoreOptions::default()
                },
            )
        }),
    ]
}

#[test]
fn golden_files_decode_identically_across_formats() {
    let expected = expected_flows();
    for (name, encode) in encoders() {
        let path = fixture_dir().join(name);
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {} ({e}); see module docs", path.display())
        });

        // Every archived format decodes to exactly the same records.
        let decoded = decode_hour_with(&bytes, DecodeOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded.hour, UnixHour::new(HOUR), "{name}");
        assert!(decoded.quarantined.is_empty(), "{name}");
        assert_eq!(decoded.flows, expected, "{name} decoded differently");

        // And the current encoder still reproduces the archive exactly.
        let reencoded = encode(UnixHour::new(HOUR), &golden_flows());
        assert_eq!(reencoded, bytes, "{name}: encoder output drifted");
    }
}

#[test]
fn golden_v3_has_multiple_independent_blocks() {
    let bytes = std::fs::read(fixture_dir().join("hour-v3.ft")).expect("v3 fixture");
    let decoded = decode_hour_with(
        &bytes,
        DecodeOptions {
            threads: 4,
            quarantine: true,
        },
    )
    .unwrap();
    assert_eq!(decoded.blocks, 3, "10_000 records at 4096/block");
    assert_eq!(decoded.flows, expected_flows());
}

/// Writes the fixtures. Run only after an intentional format change,
/// and commit the result: `cargo test -p iotscope-tests --test
/// store_golden -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, encode) in encoders() {
        std::fs::write(dir.join(name), encode(UnixHour::new(HOUR), &golden_flows())).unwrap();
    }
}
