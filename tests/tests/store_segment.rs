//! Segmented-store parity: compacting per-hour flowtuple files into
//! IOTSG01 segments must be invisible to every reader. Analysis output,
//! quarantine behavior, and raw hour bytes all have to be bit-identical
//! before and after `compact_to_segments`, sequentially and in
//! sharded-parallel mode, on arbitrary subsets of the paper window.

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions, ParallelMode};
use iotscope_core::Analysis;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::TcpFlags;
use iotscope_net::segment::{Manifest, SegmentStoreBuilder};
use iotscope_net::store::{encode_hour, FlowStore, StoreFormat, StoreOptions, BLOCK_RECORDS};
use iotscope_net::time::UnixHour;
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotscope-seg-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shared tiny scenario, generated once; every case writes its own
/// store from slices of this traffic.
struct Shared {
    built: BuiltScenario,
    traffic: Vec<HourTraffic>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic = built.scenario.generate();
        Shared { built, traffic }
    })
}

/// The aggregates the report is built from; if these agree, the two
/// stores are indistinguishable to everything downstream.
fn assert_same_analysis(a: &Analysis, b: &Analysis, what: &str) {
    assert_eq!(a.devices, b.devices, "{what}: devices");
    assert_eq!(a.protocol_packets, b.protocol_packets, "{what}: protocol");
    assert_eq!(a.scan_services, b.scan_services, "{what}: scans");
    assert_eq!(a.udp_ports, b.udp_ports, "{what}: udp ports");
    assert_eq!(
        a.backscatter_intervals, b.backscatter_intervals,
        "{what}: backscatter"
    );
    assert_eq!(a.top5_series, b.top5_series, "{what}: top5");
    assert_eq!(a.unmatched_flows, b.unmatched_flows, "{what}: unmatched");
}

/// Deterministic synthetic hour with exactly `n` records, so block
/// boundary cases (`n % BLOCK_RECORDS == 0`) can be pinned.
fn synth_hour(hour: u64, n: usize) -> Vec<FlowTuple> {
    let mut state = hour | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let r = next();
            FlowTuple::tcp(
                Ipv4Addr::from(0x0a00_0000 | (i as u32 % 251)),
                Ipv4Addr::from(0x2c00_0000 | (r as u32 & 0x00ff_ffff)),
                1024 + (r >> 24) as u16 % 50_000,
                if i % 2 == 0 { 23 } else { 2323 },
                TcpFlags::SYN,
            )
            .with_packets(1 + (r >> 32) as u32 % 4)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any subset of the window's hours, compacted at any segment
    /// granularity, analyzes bit-identically to the per-hour layout —
    /// sequentially and sharded-parallel.
    #[test]
    fn prop_segmented_analysis_matches_per_hour(
        keep in proptest::collection::vec(any::<bool>(), 143),
        hours_per_segment in 1usize..9,
    ) {
        let shared = shared();
        let window = shared.built.scenario.telescope().window;
        let dir = tmpdir("prop");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let mut kept = 0usize;
        for (i, t) in shared.traffic.iter().enumerate() {
            // Always keep at least one hour so there is something to
            // compact and analyze.
            if keep[i % keep.len()] || kept == 0 && i == shared.traffic.len() - 1 {
                store.write_hour(t.hour, &t.flows).unwrap();
                kept += 1;
            }
        }
        let pipeline =
            AnalysisPipeline::new(&shared.built.inventory.db, window.num_hours());
        let options = AnalyzeOptions::new().window(window);
        let sharded = AnalyzeOptions::new()
            .window(window)
            .threads(3)
            .mode(ParallelMode::Sharded);
        let before = pipeline.run(&store, &options).unwrap();
        let before_sharded = pipeline.run(&store, &sharded).unwrap();

        let report = store.compact_to_segments(hours_per_segment).unwrap();
        prop_assert_eq!(report.hours_compacted, kept);
        prop_assert_eq!(report.segments_written, kept.div_ceil(hours_per_segment));
        prop_assert!(store.manifest_path().is_file());

        // Same store handle and a freshly opened one must both agree.
        let reopened = FlowStore::open(&dir).unwrap();
        for (who, s) in [("cached", &store), ("reopened", &reopened)] {
            let after = pipeline.run(s, &options).unwrap();
            prop_assert_eq!(&before.dropped_days, &after.dropped_days);
            assert_same_analysis(&before.analysis, &after.analysis, who);
            let after_sharded = pipeline.run(s, &sharded).unwrap();
            assert_same_analysis(
                &before_sharded.analysis,
                &after_sharded.analysis,
                &format!("{who} sharded"),
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn quarantine_parity_survives_compaction() {
    let shared = shared();
    let dir = tmpdir("quarantine");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    for t in &shared.traffic[..24] {
        store.write_hour(t.hour, &t.flows).unwrap();
    }
    let healthy_before: Vec<Vec<FlowTuple>> = shared.traffic[..24]
        .iter()
        .filter(|t| t.hour != shared.traffic[11].hour)
        .map(|t| store.read_hour(t.hour).unwrap())
        .collect();
    // Corrupt the final block payload of a mid-window v3 hour: tolerant
    // reads quarantine it, strict reads fail it.
    let victim = shared.traffic[11].hour;
    let path = store.hour_path(victim);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    let before = store.read_hour_tolerant(victim, 1).unwrap();
    assert!(
        !before.quarantined.is_empty(),
        "corruption must land in a quarantinable block"
    );
    let strict_before = store.read_hour(victim).unwrap_err().to_string();
    assert!(strict_before.contains("checksum"), "{strict_before}");

    // Compaction copies v3 files verbatim — the corruption rides along
    // instead of being silently healed or escalated.
    store.compact_to_segments(7).unwrap();
    assert!(!store.hour_path(victim).is_file(), "per-hour file removed");
    let after = store.read_hour_tolerant(victim, 1).unwrap();
    assert_eq!(before.flows, after.flows, "salvaged flows must match");
    assert_eq!(before.quarantined, after.quarantined);
    let strict_after = store.read_hour(victim).unwrap_err().to_string();
    assert_eq!(strict_before, strict_after);

    // And the healthy hours read back identically through the mapped
    // path.
    let healthy_after: Vec<Vec<FlowTuple>> = shared.traffic[..24]
        .iter()
        .filter(|t| t.hour != victim)
        .map(|t| store.read_hour(t.hour).unwrap())
        .collect();
    assert_eq!(healthy_before, healthy_after);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exact_block_multiple_hours_roundtrip_through_segments() {
    let dir = tmpdir("blockmult");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    // One block exactly, two blocks exactly, and one record over — the
    // boundary cases for the v3 index math, per-hour and mapped.
    let sizes = [BLOCK_RECORDS, 2 * BLOCK_RECORDS, 2 * BLOCK_RECORDS + 1];
    let hours: Vec<UnixHour> = (0..sizes.len() as u64)
        .map(|i| UnixHour::new(500_000 + i))
        .collect();
    for (hour, n) in hours.iter().zip(sizes) {
        store.write_hour(*hour, &synth_hour(hour.get(), n)).unwrap();
    }
    let per_hour: Vec<(Vec<u8>, Vec<FlowTuple>)> = hours
        .iter()
        .map(|h| {
            (
                store.read_hour_bytes(*h).unwrap(),
                store.read_hour(*h).unwrap(),
            )
        })
        .collect();
    store.compact_to_segments(2).unwrap();
    for ((hour, n), (bytes, flows)) in hours.iter().zip(sizes).zip(&per_hour) {
        let fetched = store.fetch_hour_bytes(*hour).unwrap();
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(fetched.is_mapped(), "hour {hour} should be mmap-backed");
        assert_eq!(&*fetched, &bytes[..], "hour {hour} bytes drifted");
        let decoded = store.read_hour(*hour).unwrap();
        assert_eq!(decoded.len(), n);
        assert_eq!(&decoded, flows, "hour {hour} flows drifted");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_final_block_fails_loud_per_hour_and_in_segment() {
    let hour = UnixHour::new(510_000);
    let flows = synth_hour(hour.get(), BLOCK_RECORDS + 77);
    let full = encode_hour(
        hour,
        &flows,
        StoreOptions {
            format: StoreFormat::V3,
            ..StoreOptions::default()
        },
    );
    // Chop bytes off the final block's payload; the index still claims
    // the full length, so the decoder must refuse rather than read past
    // the end.
    let truncated = &full[..full.len() - 64];

    let dir = tmpdir("truncated");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    let path = store.hour_path(hour);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, truncated).unwrap();
    let per_hour_err = store.read_hour(hour).unwrap_err().to_string();
    assert!(
        per_hour_err.contains("implausible payload length"),
        "{per_hour_err}"
    );

    // The same truncated hour inside a segment fails with the same
    // error through the mapped read path.
    std::fs::remove_file(&path).unwrap();
    let mut builder =
        SegmentStoreBuilder::new(&store.segments_dir(), 4, Manifest::default()).unwrap();
    builder.push(hour, truncated.to_vec()).unwrap();
    builder.finish().unwrap();
    let reopened = FlowStore::open(&dir).unwrap();
    assert!(reopened.has_hour(hour));
    let mapped_err = reopened.read_hour(hour).unwrap_err().to_string();
    assert_eq!(per_hour_err, mapped_err);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn write_hour_shadows_the_segment_copy() {
    let dir = tmpdir("shadow");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    let hour = UnixHour::new(520_000);
    let original = synth_hour(hour.get(), 700);
    store.write_hour(hour, &original).unwrap();
    let original_sorted = store.read_hour(hour).unwrap();
    store.compact_to_segments(4).unwrap();
    assert!(!store.hour_path(hour).is_file());
    assert_eq!(store.read_hour(hour).unwrap(), original_sorted);

    // A rewrite lands as a per-hour file that shadows the segment copy…
    let replacement = synth_hour(hour.get() + 99, 300);
    store.write_hour(hour, &replacement).unwrap();
    let fetched = store.fetch_hour_bytes(hour).unwrap();
    assert!(!fetched.is_mapped(), "per-hour file must win");
    let read_back = store.read_hour(hour).unwrap();
    assert_eq!(read_back.len(), replacement.len());
    assert_ne!(read_back, original_sorted);

    // …and deleting the shadow falls back to the untouched segment.
    std::fs::remove_file(store.hour_path(hour)).unwrap();
    assert_eq!(store.read_hour(hour).unwrap(), original_sorted);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn presence_checks_see_segment_resident_hours() {
    let shared = shared();
    let window = shared.built.scenario.telescope().window;
    let dir = tmpdir("presence");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    for t in &shared.traffic {
        store.write_hour(t.hour, &t.flows).unwrap();
    }
    let present_before = store.hours_present(&window);
    assert_eq!(present_before.len() as u32, window.num_hours());
    store.compact_to_segments(50).unwrap();
    assert!(
        store.hours_on_disk().unwrap().is_empty(),
        "no per-hour files left"
    );

    let reopened = FlowStore::open(&dir).unwrap();
    assert_eq!(reopened.hours_present(&window), present_before);
    assert!(reopened.hours_missing(&window).is_empty());
    assert!(reopened.has_hour(shared.traffic[0].hour));
    assert!(!reopened.has_hour(UnixHour::new(1)));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_manifest_fails_reads_but_not_presence_checks() {
    let dir = tmpdir("badmanifest");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    let hour = UnixHour::new(530_000);
    store
        .write_hour(hour, &synth_hour(hour.get(), 200))
        .unwrap();
    store.compact_to_segments(4).unwrap();

    let manifest = store.manifest_path();
    let mut bytes = std::fs::read(&manifest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&manifest, bytes).unwrap();

    // A fresh handle (no cached manifest) must fail reads loudly but
    // degrade presence checks to "absent" instead of panicking.
    let reopened = FlowStore::open(&dir).unwrap();
    let err = reopened.read_hour(hour).unwrap_err().to_string();
    assert!(err.contains("manifest"), "{err}");
    assert!(!reopened.has_hour(hour));
    std::fs::remove_dir_all(&dir).unwrap();
}
