//! Streaming threat-intel scoring acceptance: the incremental
//! per-device [`ScoreEngine`] folded hour by hour is bit-identical to
//! the batch §V join, escalation alerts dedup by severity tier, and the
//! refactored thin-read consumers (`threat_summary`, `packet_cdfs`,
//! `malware_correlation`, `Report::build`) reproduce the pre-refactor
//! implementations exactly.
//!
//! The reference implementations below are verbatim ports of the
//! pre-refactor `core::malicious` join logic — per-call
//! `ThreatRepo`/`MalwareDb` scans over `Analysis` — kept here as the
//! golden the columnar `ScoreTable` reads must match.

use iotscope_core::malicious::{
    self, select_candidates, MalwareFindings, ThreatRow, ThreatSummary,
};
use iotscope_core::query::QueryContext;
use iotscope_core::score::{ScoreConfig, ScoreTable, Severity};
use iotscope_core::stats::Ecdf;
use iotscope_core::stream::{Alert, StreamConfig, StreamingAnalyzer};
use iotscope_core::{Analysis, Analyzer, Report, ReportContext, ReportIntel};
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::family::FamilyResolver;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::{
    IntelIndex, MalwareDb, MalwareFamily, MalwareHash, ThreatCategory, ThreatRepo,
};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

// ---------------------------------------------------------------------
// Pre-refactor reference implementations (the batch §V join as it
// existed before the ScoreTable refactor).
// ---------------------------------------------------------------------

fn reference_threat_summary(
    analysis: &Analysis,
    db: &DeviceDb,
    repo: &ThreatRepo,
    candidates: &[DeviceId],
) -> ThreatSummary {
    let mut flagged = Vec::new();
    let mut counts = [0usize; 6];
    let mut cps_malware = 0usize;
    let mut consumer_malware = 0usize;
    for id in candidates {
        let ip = db.device(*id).ip;
        let cats = repo.categories_for(ip);
        if cats.is_empty() {
            continue;
        }
        flagged.push(*id);
        for (i, cat) in ThreatCategory::ALL.iter().enumerate() {
            if cats.contains(cat) {
                counts[i] += 1;
            }
        }
        if cats.contains(&ThreatCategory::Malware) {
            match analysis
                .devices
                .get(*id)
                .map(|o| o.realm)
                .unwrap_or(Realm::Consumer)
            {
                Realm::Cps => cps_malware += 1,
                Realm::Consumer => consumer_malware += 1,
            }
        }
    }
    let n = flagged.len();
    let rows = ThreatCategory::ALL
        .iter()
        .enumerate()
        .map(|(i, cat)| ThreatRow {
            category: *cat,
            devices: counts[i],
            pct: if n == 0 {
                0.0
            } else {
                100.0 * counts[i] as f64 / n as f64
            },
        })
        .collect();
    ThreatSummary {
        explored: candidates.len(),
        flagged,
        rows,
        cps_malware_devices: cps_malware,
        consumer_malware_devices: consumer_malware,
    }
}

fn reference_packet_cdfs(
    analysis: &Analysis,
    db: &DeviceDb,
    repo: &ThreatRepo,
    candidates: &[DeviceId],
) -> (Ecdf, Ecdf) {
    let mut all = Vec::with_capacity(candidates.len());
    let mut flagged = Vec::new();
    for id in candidates {
        let Some(obs) = analysis.devices.get(*id) else {
            continue;
        };
        let pkts = obs.total_packets() as f64;
        all.push(pkts);
        if repo.is_flagged(db.device(*id).ip) {
            flagged.push(pkts);
        }
    }
    (Ecdf::new(all), Ecdf::new(flagged))
}

fn reference_malware_correlation(
    analysis: &Analysis,
    db: &DeviceDb,
    malware: &MalwareDb,
    resolver: &FamilyResolver,
) -> MalwareFindings {
    let mut devices = Vec::new();
    let mut hashes: BTreeSet<MalwareHash> = BTreeSet::new();
    let mut domains: BTreeSet<String> = BTreeSet::new();
    for id in analysis.compromised_devices() {
        let ip = db.device(id).ip;
        let sample_hashes = malware.hashes_contacting(ip);
        if sample_hashes.is_empty() {
            continue;
        }
        devices.push(id);
        hashes.extend(sample_hashes);
        domains.extend(malware.domains_contacting(ip));
    }
    let families: BTreeSet<MalwareFamily> =
        hashes.iter().filter_map(|h| resolver.resolve(h)).collect();
    MalwareFindings {
        devices,
        hashes: hashes.into_iter().collect(),
        domains: domains.into_iter().collect(),
        families: families.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------
// Shared fixture: a tiny scenario prefix with intel synthesized from
// its own batch candidates.
// ---------------------------------------------------------------------

struct Fixture {
    built: iotscope_telescope::paper::BuiltScenario,
    traffic: Vec<iotscope_telescope::HourTraffic>,
    analysis: Analysis,
    candidates: Vec<DeviceId>,
    intel: iotscope_intel::synth::IntelOutput,
    index: IntelIndex,
}

fn fixture(seed: u64, hours: u32) -> Fixture {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(seed));
    let traffic: Vec<_> = (1..=hours)
        .map(|i| built.scenario.generate_hour(i))
        .collect();
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for h in &traffic {
        an.ingest_hour(h);
    }
    let analysis = an.finish();
    let candidates = select_candidates(&analysis, 200);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(seed)).build(&built.inventory.db, &candidates);
    let index = IntelIndex::build(&intel.threats, &intel.malware);
    Fixture {
        built,
        traffic,
        analysis,
        candidates,
        intel,
        index,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence: folding random hour prefixes through
    /// the streaming engine yields a ScoreTable bit-identical to the
    /// batch join of the same prefix, escalation alerts never repeat a
    /// tier per device, and the streamed alert set is exactly the batch
    /// table's above-threshold rows.
    #[test]
    fn streaming_scores_match_batch_on_random_prefixes(
        seed in 0u64..10_000,
        hours in 6u32..40,
    ) {
        let f = fixture(seed, hours);
        let cfg = ScoreConfig::default();
        let batch =
            ScoreTable::from_batch(&f.analysis, &f.built.inventory.db, &f.index, cfg);

        let mut stream =
            StreamingAnalyzer::new(&f.built.inventory.db, 143, StreamConfig::default())
                .with_intel(&f.index, cfg);
        for h in &f.traffic {
            stream.push_hour(h);
        }
        let (_, alerts, scores) = stream.finish_with_scores();
        let streamed = scores.expect("intel stage attached");
        prop_assert_eq!(&streamed, &batch, "streamed table != batch join");

        // Dedup: per device, escalation tiers are strictly increasing,
        // and the last one matches the final table tier.
        let mut last: HashMap<DeviceId, Severity> = HashMap::new();
        for a in &alerts {
            if let Alert::ScoreEscalation { device, tier, .. } = a {
                if let Some(prev) = last.get(device) {
                    prop_assert!(tier > prev, "repeated or regressed tier for {device:?}");
                }
                prop_assert!(*tier >= cfg.alert_min_tier);
                last.insert(*device, *tier);
            }
        }
        for (device, tier) in &last {
            let row = streamed.get(*device).expect("alerted device is scored");
            prop_assert_eq!(row.tier, *tier, "final escalation disagrees with table");
        }
        // Completeness: exactly the batch rows at or above the alert
        // floor escalated at some point during the run.
        let expected: BTreeSet<DeviceId> = batch
            .rows()
            .filter(|r| r.tier >= cfg.alert_min_tier)
            .map(|r| r.device)
            .collect();
        let alerted: BTreeSet<DeviceId> = last.keys().copied().collect();
        prop_assert_eq!(alerted, expected, "streamed alert set != batch tier set");
    }

    /// The refactored thin-read consumers reproduce the pre-refactor
    /// per-call-scan implementations bit for bit, including the
    /// Report::build intel section.
    #[test]
    fn thin_reads_match_prerefactor_references(seed in 0u64..10_000, hours in 6u32..30) {
        let f = fixture(seed, hours);
        let db = &f.built.inventory.db;
        let scores = ScoreTable::from_batch(&f.analysis, db, &f.index, ScoreConfig::default());

        let summary = malicious::threat_summary(&scores, db, &f.index, &f.candidates);
        let reference = reference_threat_summary(&f.analysis, db, &f.intel.threats, &f.candidates);
        prop_assert_eq!(&summary, &reference);

        let cdfs = malicious::packet_cdfs(&scores, &f.candidates);
        let ref_cdfs = reference_packet_cdfs(&f.analysis, db, &f.intel.threats, &f.candidates);
        prop_assert_eq!(cdfs, ref_cdfs);

        let findings =
            malicious::malware_correlation(&scores, &f.intel.malware, &f.intel.resolver);
        let ref_findings =
            reference_malware_correlation(&f.analysis, db, &f.intel.malware, &f.intel.resolver);
        prop_assert_eq!(&findings, &ref_findings);

        // Report::build drives the same join through QueryApi-selected
        // candidates; its intel sections must equal the references
        // computed from the identical candidate list.
        let report = Report::build(&ReportContext {
            analysis: &f.analysis,
            db,
            isps: &f.built.inventory.isps,
            intel: Some(ReportIntel {
                threats: &f.intel.threats,
                malware: &f.intel.malware,
                resolver: &f.intel.resolver,
                top_n_per_realm: 200,
            }),
        });
        let api = QueryContext::batch(&f.analysis, db, &f.built.inventory.isps);
        let report_candidates = iotscope_core::query::QueryApi::candidates(&api, 200);
        let expected_summary =
            reference_threat_summary(&f.analysis, db, &f.intel.threats, &report_candidates);
        prop_assert_eq!(report.threat_summary, Some(expected_summary));
        prop_assert_eq!(report.malware_findings, Some(ref_findings));
    }
}

/// Escalations interleave with behavioral alerts in interval order, and
/// a device crossing several tiers in one hour raises exactly one
/// escalation for the highest tier reached.
#[test]
fn escalations_stream_in_interval_order() {
    let f = fixture(321, 48);
    let mut stream = StreamingAnalyzer::new(&f.built.inventory.db, 143, StreamConfig::default())
        .with_intel(&f.index, ScoreConfig::default());
    let mut intervals = Vec::new();
    for h in &f.traffic {
        for a in stream.push_hour(h) {
            if let Alert::ScoreEscalation { interval, .. } = a {
                intervals.push(interval);
            }
        }
    }
    assert!(!intervals.is_empty(), "tiny scenario plants intel hits");
    assert!(
        intervals.windows(2).all(|w| w[0] <= w[1]),
        "escalations out of interval order"
    );
}
