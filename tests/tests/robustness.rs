//! Robustness and invariant properties across crate boundaries:
//! parsers never panic on arbitrary bytes, budgets are conserved, and
//! generated traffic satisfies structural invariants.

use iotscope_core::classify::{classify, TrafficClass};
use iotscope_intel::sandbox::SandboxReport;
use iotscope_net::store::decode_hour;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The flowtuple store decoder must reject, never panic on, arbitrary
    /// bytes.
    #[test]
    fn store_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_hour(&bytes);
    }

    /// Same for bytes that start with a real magic (deeper paths), both
    /// the legacy v1 and the current v2 format.
    #[test]
    fn store_decoder_never_panics_with_magic(
        tail in proptest::collection::vec(any::<u8>(), 0..256),
        v2: bool,
    ) {
        let mut bytes = if v2 { b"IOTFT02".to_vec() } else { b"IOTFT01".to_vec() };
        bytes.extend(tail);
        let _ = decode_hour(&bytes);
    }

    /// The sandbox-report parser must reject, never panic on, arbitrary
    /// text.
    #[test]
    fn sandbox_parser_never_panics(text in "\\PC{0,400}") {
        let _ = SandboxReport::parse_xml(&text);
    }

    /// Sandbox parser with tag-shaped noise.
    #[test]
    fn sandbox_parser_never_panics_on_tag_soup(
        tags in proptest::collection::vec(("[a-z0-9_]{1,12}", "\\PC{0,24}"), 0..12),
    ) {
        let mut text = String::from("<report>\n");
        for (tag, value) in tags {
            text.push_str(&format!("<{tag}>{value}</{tag}>\n"));
        }
        text.push_str("</report>\n");
        let _ = SandboxReport::parse_xml(&text);
    }
}

#[test]
fn generated_traffic_structural_invariants() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(808));
    let telescope = *built.scenario.telescope();
    for interval in [1u32, 30, 70, 119, 143] {
        let hour = built.scenario.generate_hour(interval);
        assert_eq!(hour.interval, interval);
        for flow in &hour.flows {
            // Every flow lands inside the dark space and carries packets.
            assert!(
                telescope.contains(flow.dst_ip),
                "{} outside telescope",
                flow.dst_ip
            );
            assert!(
                !telescope.contains(flow.src_ip),
                "source {} inside telescope",
                flow.src_ip
            );
            assert!(flow.packets >= 1);
            // Every flow classifies into exactly one class (total function).
            let _ = classify(flow);
        }
    }
}

#[test]
fn scenario_budget_is_conserved_within_tolerance() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(809));
    let expected = built.scenario.expected_total_packets();
    let actual: u64 = built
        .scenario
        .generate()
        .iter()
        .map(|h| h.flows.iter().map(|f| u64::from(f.packets)).sum::<u64>())
        .sum();
    // Bernoulli rounding + guaranteed discovery flows keep the total near
    // the expectation.
    let ratio = actual as f64 / expected;
    assert!(
        (0.9..=1.15).contains(&ratio),
        "actual {actual} vs expected {expected}"
    );
}

#[test]
fn victims_and_scanners_partition_backscatter() {
    // Global invariant over a full run: backscatter comes only from
    // planted victims; scan packets only from non-victims.
    let built = PaperScenario::build(PaperScenarioConfig::tiny(810));
    let traffic = built.scenario.generate();
    let victims: std::collections::HashSet<_> = built
        .truth
        .devices_with_role(iotscope_telescope::ground_truth::Role::DosVictim)
        .into_iter()
        .map(|d| built.inventory.db.device(d).ip)
        .collect();
    for hour in &traffic {
        for flow in &hour.flows {
            match classify(flow) {
                TrafficClass::Backscatter => {
                    assert!(
                        victims.contains(&flow.src_ip),
                        "backscatter from non-victim {}",
                        flow.src_ip
                    );
                }
                TrafficClass::TcpScan | TrafficClass::IcmpScan => {
                    assert!(
                        !victims.contains(&flow.src_ip),
                        "scan from victim {}",
                        flow.src_ip
                    );
                }
                _ => {}
            }
        }
    }
}
