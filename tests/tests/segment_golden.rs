//! Golden-file compatibility for the IOTSG01 segment container.
//!
//! A fixed three-hour segment is checked into `fixtures/golden/`; the
//! encoder must keep reproducing it byte for byte, and the reader must
//! keep decoding it to the same records — so a container or codec
//! change that would orphan compacted telescope archives fails here,
//! exactly as `store_golden` does for the per-hour formats.
//!
//! To regenerate after an *intentional* format change:
//! `cargo test -p iotscope-tests --test segment_golden -- --ignored regenerate`

use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::{IcmpType, TcpFlags};
use iotscope_net::segment::{encode_segment, Segment};
use iotscope_net::store::{
    decode_hour_with, encode_hour, DecodeOptions, StoreFormat, StoreOptions,
};
use iotscope_net::time::UnixHour;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// The fixture hours: the first three of the paper window's first day.
/// Sizes straddle one v3 block (4096 records): two blocks, one partial
/// block, and a tiny hour.
const HOURS: [(u64, usize); 3] = [(414_456, 5_000), (414_457, 1_200), (414_458, 17)];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden/segment-v1.seg")
}

/// Deterministic per-hour records (xorshift, seeded by the hour).
/// MUST NOT change — the committed fixture is derived from it.
fn golden_hour(hour: u64, n: usize) -> Vec<FlowTuple> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (hour << 17);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n as u32)
        .map(|i| {
            let r = next();
            let src = Ipv4Addr::from(0x0a00_0000 | (i % 47));
            let dst = Ipv4Addr::from(0x2c00_0000 | (r as u32 & 0x00ff_ffff));
            match i % 8 {
                0 => FlowTuple::udp(src, dst, 1024 + (r >> 24) as u16 % 50_000, 5060)
                    .with_packets(1 + (r >> 32) as u32 % 6),
                1 => FlowTuple::icmp(src, dst, IcmpType::EchoRequest).with_ttl((r >> 40) as u8),
                _ => FlowTuple::tcp(
                    src,
                    dst,
                    1024 + (r >> 24) as u16 % 50_000,
                    if i % 3 == 0 { 23 } else { 81 },
                    TcpFlags::SYN,
                )
                .with_packets(1 + (r >> 32) as u32 % 3)
                .with_ttl(32 + ((r >> 40) as u8 % 4) * 32),
            }
        })
        .collect()
}

/// The segment payloads: each golden hour encoded v3 (the only format
/// compaction writes).
fn golden_payloads() -> Vec<(UnixHour, Vec<u8>)> {
    HOURS
        .iter()
        .map(|&(hour, n)| {
            (
                UnixHour::new(hour),
                encode_hour(
                    UnixHour::new(hour),
                    &golden_hour(hour, n),
                    StoreOptions {
                        format: StoreFormat::V3,
                        ..StoreOptions::default()
                    },
                ),
            )
        })
        .collect()
}

#[test]
fn golden_segment_decodes_and_encoder_has_not_drifted() {
    let path = fixture_path();
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));

    // The archived segment still opens, routes, and decodes.
    let segment = Segment::open(&path).unwrap();
    assert_eq!(segment.len(), HOURS.len());
    assert_eq!(
        segment.hours().collect::<Vec<_>>(),
        HOURS.map(|(h, _)| UnixHour::new(h)).to_vec()
    );
    for (hour, n) in HOURS {
        let payload = segment
            .hour_bytes(UnixHour::new(hour))
            .expect("hour routed");
        let decoded = decode_hour_with(payload, DecodeOptions::default())
            .unwrap_or_else(|e| panic!("hour {hour}: {e}"));
        assert_eq!(decoded.hour, UnixHour::new(hour));
        assert!(decoded.quarantined.is_empty());
        assert_eq!(decoded.flows.len(), n, "hour {hour}");
        let mut expected = golden_hour(hour, n);
        expected.sort_by_key(|f| (f.src_ip, f.dst_ip, f.dst_port));
        assert_eq!(decoded.flows, expected, "hour {hour} decoded differently");
    }
    assert!(segment.locate(UnixHour::new(414_459)).is_none());

    // And the current encoder still reproduces the archive exactly.
    let reencoded = encode_segment(&golden_payloads()).unwrap();
    assert_eq!(reencoded, bytes, "segment encoder output drifted");
}

/// Writes the fixture. Run only after an intentional format change, and
/// commit the result: `cargo test -p iotscope-tests --test
/// segment_golden -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, encode_segment(&golden_payloads()).unwrap()).unwrap();
}
