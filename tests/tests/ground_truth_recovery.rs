//! Inference-vs-ground-truth validation: whatever the simulator plants,
//! the analysis pipeline must recover — and nothing else.

use iotscope_core::classify::TrafficClass;
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_telescope::ground_truth::Role;
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use std::collections::HashSet;
use std::sync::OnceLock;

fn fixture() -> &'static (BuiltScenario, iotscope_core::Analysis) {
    static FIXTURE: OnceLock<(BuiltScenario, iotscope_core::Analysis)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(99));
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        (built, analysis)
    })
}

#[test]
fn every_designated_device_is_inferred() {
    let (built, analysis) = fixture();
    let designated: HashSet<_> = built
        .inventory
        .designated_consumer
        .iter()
        .chain(built.inventory.designated_cps.iter())
        .copied()
        .collect();
    let inferred: HashSet<_> = analysis.compromised_devices().into_iter().collect();
    assert_eq!(
        inferred, designated,
        "inference must recover exactly the planted set"
    );
}

#[test]
fn no_benign_device_is_inferred() {
    let (built, analysis) = fixture();
    let designated: HashSet<_> = built
        .inventory
        .designated_consumer
        .iter()
        .chain(built.inventory.designated_cps.iter())
        .copied()
        .collect();
    for id in analysis.devices.ids() {
        assert!(
            designated.contains(id),
            "benign device {id} falsely inferred"
        );
    }
}

#[test]
fn noise_sources_are_filtered_not_correlated() {
    let (built, analysis) = fixture();
    assert!(
        analysis.unmatched_flows > 0,
        "noise must reach the telescope"
    );
    // Noise sources live outside the inventory; every observation maps to
    // a real device (guaranteed by construction of lookup, asserted via
    // the device-id space).
    for id in analysis.devices.ids() {
        assert!((id.0 as usize) < built.inventory.db.len());
    }
}

#[test]
fn planted_victims_are_inferred_as_victims() {
    let (built, analysis) = fixture();
    let truth_victims: HashSet<_> = built
        .truth
        .devices_with_role(Role::DosVictim)
        .into_iter()
        .collect();
    let inferred_victims: HashSet<_> = analysis.dos_victims().into_iter().collect();
    // Every planted victim emitted backscatter and was classified as such.
    for v in &truth_victims {
        assert!(inferred_victims.contains(v), "victim {v} not inferred");
    }
    // No scanner-only device is classified as a victim.
    for v in &inferred_victims {
        assert!(
            truth_victims.contains(v),
            "device {v} inferred as victim but never planted as one"
        );
    }
}

#[test]
fn planted_tcp_scanners_emit_tcp_scans() {
    let (built, analysis) = fixture();
    let truth_scanners: HashSet<_> = built
        .truth
        .devices_with_role(Role::TcpScanner)
        .into_iter()
        .collect();
    let inferred: HashSet<_> = analysis.tcp_scanners().into_iter().collect();
    let recovered = truth_scanners.intersection(&inferred).count();
    // Nearly all planted scanners are observed scanning (tiny budgets may
    // emit only their guaranteed UDP-free discovery flow).
    assert!(
        recovered as f64 > 0.95 * truth_scanners.len() as f64,
        "recovered {recovered} of {}",
        truth_scanners.len()
    );
    // And no victim shows up as a TCP scanner.
    for v in built.truth.devices_with_role(Role::DosVictim) {
        assert!(!inferred.contains(&v));
    }
}

#[test]
fn planted_udp_actors_emit_udp() {
    let (built, analysis) = fixture();
    let truth_udp: HashSet<_> = built
        .truth
        .devices_with_role(Role::UdpActor)
        .into_iter()
        .collect();
    let inferred: HashSet<_> = analysis.udp_devices().into_iter().collect();
    let recovered = truth_udp.intersection(&inferred).count();
    assert!(
        recovered as f64 > 0.95 * truth_udp.len() as f64,
        "recovered {recovered} of {}",
        truth_udp.len()
    );
}

#[test]
fn discovery_respects_truth_onsets() {
    let (built, analysis) = fixture();
    for obs in analysis.devices.rows() {
        let id = &obs.device;
        if let Some(onset) = built.truth.onset.get(id) {
            assert!(
                obs.first_interval >= *onset,
                "{id} observed at {} before onset {onset}",
                obs.first_interval
            );
        }
    }
}

#[test]
fn dos_spike_intervals_carry_planted_spikes() {
    let (built, analysis) = fixture();
    for interval in &built.truth.dos_spike_intervals {
        let idx = (*interval - 1) as usize;
        let slot = &analysis.backscatter_intervals[idx];
        assert!(
            slot.total > 0,
            "planted spike at {interval} produced no backscatter"
        );
        let victim = slot.top_victim.expect("spike interval has a top victim").0;
        assert!(
            built.truth.has_role(victim, Role::DosVictim),
            "top victim {victim} at {interval} is not a planted victim"
        );
    }
}

#[test]
fn victims_emit_only_backscatter_like_traffic() {
    let (built, analysis) = fixture();
    for v in built.truth.devices_with_role(Role::DosVictim) {
        let obs = analysis.devices.get(v).expect("planted victim correlated");
        assert!(obs.packets(TrafficClass::Backscatter) > 0);
        assert_eq!(obs.packets(TrafficClass::TcpScan), 0, "victim {v} scanned");
        assert_eq!(obs.packets(TrafficClass::Udp), 0, "victim {v} sent UDP");
    }
}

#[test]
fn icmp_scanners_recovered() {
    let (built, analysis) = fixture();
    for id in built.truth.devices_with_role(Role::IcmpScanner) {
        let obs = analysis
            .devices
            .get(id)
            .expect("planted scanner correlated");
        assert!(
            obs.packets(TrafficClass::IcmpScan) > 0,
            "planted ICMP scanner {id} emitted none"
        );
    }
}
