//! Determinism and scaling properties of the whole stack.

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::report::{Report, ReportContext};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

#[test]
fn same_seed_produces_identical_reports() {
    let render = |seed: u64| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(seed));
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new().threads(4))
            .unwrap()
            .analysis;
        Report::build(&ReportContext {
            analysis: &analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: None,
        })
        .render()
    };
    assert_eq!(render(123), render(123));
    assert_ne!(render(123), render(124));
}

#[test]
fn intel_population_is_deterministic_per_seed() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(5));
    let candidates = built.inventory.designated_consumer.clone();
    let a = IntelBuilder::new(IntelSynthConfig::paper(5)).build(&built.inventory.db, &candidates);
    let b = IntelBuilder::new(IntelSynthConfig::paper(5)).build(&built.inventory.db, &candidates);
    assert_eq!(a.flagged_devices, b.flagged_devices);
    assert_eq!(a.malware_devices, b.malware_devices);
    assert_eq!(a.threats.num_events(), b.threats.num_events());
    assert_eq!(a.malware.len(), b.malware.len());
}

#[test]
fn packet_budgets_scale_linearly() {
    let total = |scale: f64| {
        let mut cfg = PaperScenarioConfig::tiny(42);
        cfg.scale = scale;
        let built = PaperScenario::build(cfg);
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        analysis.total_packets() as f64
    };
    let t1 = total(0.01);
    let t3 = total(0.03);
    let ratio = t3 / t1;
    // The fixed-size events (port sweep, guaranteed discovery flows) damp
    // the ratio slightly below 3.
    assert!((2.2..=3.2).contains(&ratio), "ratio {ratio}");
}

#[test]
fn device_counts_do_not_scale_with_packet_scale() {
    let devices = |scale: f64| {
        let mut cfg = PaperScenarioConfig::tiny(42);
        cfg.scale = scale;
        let built = PaperScenario::build(cfg);
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        analysis.device_count()
    };
    // The inferred population is the designated population at any scale —
    // guaranteed discovery flows make low scales lossless.
    assert_eq!(devices(0.002), devices(0.05));
}

#[test]
fn telnet_dominates_at_every_scale() {
    for scale in [0.005, 0.05] {
        let mut cfg = PaperScenarioConfig::tiny(77);
        cfg.scale = scale;
        let built = PaperScenario::build(cfg);
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let rows = iotscope_core::scan::protocol_table(&analysis);
        assert_eq!(
            rows[0].service,
            Some(iotscope_net::ports::ScanService::Telnet),
            "scale {scale}"
        );
        assert!(
            rows[0].pct > 35.0,
            "scale {scale}: telnet pct {}",
            rows[0].pct
        );
    }
}
