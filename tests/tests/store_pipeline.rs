//! Cross-crate store/pipeline integration: the on-disk path must produce
//! the same analysis as the in-memory path, survive the paper's
//! data-quality rules, and fail loudly on corruption.

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions, ParallelMode};
use iotscope_core::report::{Report, ReportContext};
use iotscope_core::Analysis;
use iotscope_net::store::{FlowStore, StoreOptions};
use iotscope_net::time::AnalysisWindow;
use iotscope_obs::Registry;
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotscope-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shared 143-hour scenario written to disk, so the property tests
/// below don't rebuild it per case. The sequential store analysis is
/// the reference every parallel configuration must reproduce.
struct SharedStore {
    built: BuiltScenario,
    window: AnalysisWindow,
    store: FlowStore,
    traffic: Vec<iotscope_telescope::HourTraffic>,
    sequential: Analysis,
}

fn shared_store() -> &'static SharedStore {
    static SHARED: OnceLock<SharedStore> = OnceLock::new();
    SHARED.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(12));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("shared-prop");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let outcome = pipeline
            .run(&store, &AnalyzeOptions::new().window(window))
            .unwrap();
        assert!(outcome.dropped_days.is_empty());
        let traffic = built.scenario.generate();
        SharedStore {
            built,
            window,
            store,
            traffic,
            sequential: outcome.analysis,
        }
    })
}

#[test]
fn disk_roundtrip_preserves_the_full_report() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(7));
    let window = built.scenario.telescope().window;
    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());

    let traffic = built.scenario.generate();
    let mem = pipeline
        .run(&traffic, &AnalyzeOptions::new())
        .unwrap()
        .analysis;

    let dir = tmpdir("roundtrip");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    built.scenario.write_to_store(&store).unwrap();
    let outcome = pipeline
        .run(&store, &AnalyzeOptions::new().window(window))
        .unwrap();
    assert!(outcome.dropped_days.is_empty());
    let disk = outcome.analysis;

    // The two paths agree on every aggregate the report uses.
    assert_eq!(mem.devices, disk.devices);
    assert_eq!(mem.protocol_packets, disk.protocol_packets);
    assert_eq!(mem.scan_services, disk.scan_services);
    assert_eq!(mem.udp_ports, disk.udp_ports);
    assert_eq!(mem.backscatter_intervals, disk.backscatter_intervals);
    assert_eq!(mem.top5_series, disk.top5_series);

    let report = |analysis: &Analysis| {
        Report::build(&ReportContext {
            analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: None,
        })
        .render()
    };
    assert_eq!(report(&mem), report(&disk));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn plain_and_delta_encoding_agree() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(8));
    let window = built.scenario.telescope().window;
    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());

    let dir_a = tmpdir("delta");
    let dir_b = tmpdir("plain");
    let store_a = FlowStore::create(
        &dir_a,
        StoreOptions {
            delta_encode: true,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let store_b = FlowStore::create(
        &dir_b,
        StoreOptions {
            delta_encode: false,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    built.scenario.write_to_store(&store_a).unwrap();
    built.scenario.write_to_store(&store_b).unwrap();

    let options = AnalyzeOptions::new().window(window);
    let a = pipeline.run(&store_a, &options).unwrap().analysis;
    let b = pipeline.run(&store_b, &options).unwrap().analysis;
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.udp_ports, b.udp_ports);

    // Delta encoding is the smaller format.
    let size = |d: &PathBuf| -> u64 { walkdir_size(d) };
    assert!(
        size(&dir_a) < size(&dir_b),
        "{} !< {}",
        size(&dir_a),
        size(&dir_b)
    );

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

fn walkdir_size(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let entry = entry.unwrap();
            let meta = entry.metadata().unwrap();
            if meta.is_dir() {
                stack.push(entry.path());
            } else {
                total += meta.len();
            }
        }
    }
    total
}

#[test]
fn missing_day_is_dropped_and_reported() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(9));
    let window = built.scenario.telescope().window;
    let dir = tmpdir("dropday");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    built.scenario.write_to_store(&store).unwrap();
    // Delete 10 hours of day 4 (the April-18-style outage).
    for (interval, hour) in window.iter_intervals() {
        if window.day_of_interval(interval).unwrap() == 4 && interval % 2 == 0 {
            std::fs::remove_file(store.hour_path(hour)).unwrap();
        }
    }
    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
    let outcome = pipeline
        .run(&store, &AnalyzeOptions::new().window(window))
        .unwrap();
    assert_eq!(outcome.dropped_days, vec![4]);
    let analysis = outcome.analysis;
    // Day-4 intervals (97..=120) contribute nothing.
    for i in 96..120usize {
        assert_eq!(analysis.tcp_scan[0].packets[i], 0);
        assert_eq!(analysis.udp[1].packets[i], 0);
        assert_eq!(analysis.backscatter_hourly[0][i], 0);
    }
    // Other days still analyzed.
    assert!(analysis.total_packets() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sequential_and_parallel_analysis_agree_end_to_end() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(10));
    let traffic = built.scenario.generate();
    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
    let seq = pipeline
        .run(&traffic, &AnalyzeOptions::new())
        .unwrap()
        .analysis;
    for threads in [2usize, 3, 8, 64] {
        let par = pipeline
            .run(&traffic, &AnalyzeOptions::new().threads(threads))
            .unwrap()
            .analysis;
        assert_eq!(seq.devices, par.devices, "threads={threads}");
        assert_eq!(seq.scan_services, par.scan_services);
        assert_eq!(seq.backscatter_intervals, par.backscatter_intervals);
    }
}

#[test]
fn parallel_store_analysis_matches_sequential_on_full_window() {
    let shared = shared_store();
    let pipeline = AnalysisPipeline::new(&shared.built.inventory.db, shared.window.num_hours());
    for threads in [2usize, 4, 7] {
        let result = pipeline
            .run(
                &shared.store,
                &AnalyzeOptions::new()
                    .window(shared.window)
                    .threads(threads)
                    .stats(true),
            )
            .unwrap();
        assert!(result.dropped_days.is_empty());
        let par = result.analysis;
        assert_eq!(shared.sequential.devices, par.devices, "threads={threads}");
        assert_eq!(shared.sequential.protocol_packets, par.protocol_packets);
        assert_eq!(shared.sequential.scan_services, par.scan_services);
        assert_eq!(shared.sequential.udp_ports, par.udp_ports);
        assert_eq!(
            shared.sequential.backscatter_intervals,
            par.backscatter_intervals
        );
        assert_eq!(shared.sequential.top5_series, par.top5_series);
        assert_eq!(shared.sequential.unmatched_flows, par.unmatched_flows);

        let stats = result.stats.expect("stats were requested");
        assert_eq!(stats.threads, threads);
        assert_eq!(stats.hours_ingested, u64::from(shared.window.num_hours()));
        assert_eq!(stats.hours_missing, 0);
        assert_eq!(stats.hours_skipped, 0);
        assert!(stats.bytes_read > 0);
        assert!(stats.records_decoded > 0);
        assert!(stats.wall_time > std::time::Duration::ZERO);
    }
}

#[test]
fn store_stats_account_for_every_byte_on_disk() {
    let shared = shared_store();
    let pipeline = AnalysisPipeline::new(&shared.built.inventory.db, shared.window.num_hours());
    let result = pipeline
        .run(
            &shared.store,
            &AnalyzeOptions::new()
                .window(shared.window)
                .threads(4)
                .stats(true),
        )
        .unwrap();
    let stats = result.stats.expect("stats were requested");
    assert_eq!(stats.bytes_read, walkdir_size(shared.store.root()));
    let records: u64 = shared
        .window
        .iter_hours()
        .map(|h| shared.store.read_hour(h).unwrap().len() as u64)
        .sum();
    assert_eq!(stats.records_decoded, records);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any thread count — zero, more threads than hours, anything in
    /// between — must reproduce the sequential result exactly, on both
    /// the in-memory and the store-backed parallel paths, and the
    /// stable (non-timing) metrics must be bit-identical to a
    /// single-threaded run.
    #[test]
    fn prop_any_thread_count_matches_sequential(threads in 0usize..200) {
        let shared = shared_store();
        let pipeline =
            AnalysisPipeline::new(&shared.built.inventory.db, shared.window.num_hours());

        let run_store = |threads: usize| {
            let registry = Registry::new();
            let outcome = pipeline
                .run(
                    &shared.store,
                    &AnalyzeOptions::new()
                        .window(shared.window)
                        .threads(threads)
                        .metrics(&registry),
                )
                .unwrap();
            (outcome, registry.snapshot().stable_only())
        };
        let (base, base_stable) = run_store(1);
        let (par, par_stable) = run_store(threads);
        prop_assert!(par.dropped_days.is_empty());
        prop_assert_eq!(&shared.sequential.devices, &par.analysis.devices);
        prop_assert_eq!(&shared.sequential.scan_services, &par.analysis.scan_services);
        prop_assert_eq!(&shared.sequential.udp_ports, &par.analysis.udp_ports);
        prop_assert_eq!(&shared.sequential.unmatched_flows, &par.analysis.unmatched_flows);
        prop_assert_eq!(&base.analysis.devices, &par.analysis.devices);

        // Work counters — store bytes/records, hours ingested, analysis
        // class totals — are deterministic; only timings/gauges vary.
        prop_assert_eq!(&base_stable, &par_stable, "stable metrics differ at threads={}", threads);

        let mem = pipeline
            .run(&shared.traffic, &AnalyzeOptions::new().threads(threads))
            .unwrap()
            .analysis;
        prop_assert_eq!(&shared.sequential.devices, &mem.devices);
        prop_assert_eq!(&shared.sequential.backscatter_intervals, &mem.backscatter_intervals);

        // The hour-pooled mode must match too, now that sharded is the
        // default — same aggregates, same stable metrics.
        let pooled_registry = Registry::new();
        let pooled = pipeline
            .run(
                &shared.store,
                &AnalyzeOptions::new()
                    .window(shared.window)
                    .threads(threads)
                    .mode(ParallelMode::Pooled)
                    .metrics(&pooled_registry),
            )
            .unwrap();
        prop_assert_eq!(&shared.sequential.devices, &pooled.analysis.devices);
        prop_assert_eq!(&shared.sequential.scan_services, &pooled.analysis.scan_services);
        prop_assert_eq!(
            &base_stable,
            &pooled_registry.snapshot().stable_only(),
            "pooled stable metrics differ at threads={}",
            threads
        );

        // Degenerate pool: with at least as many workers as hours, the
        // pooled mode routes to the inline path — no per-worker
        // analyzers are built, so there is nothing to merge.
        let slice = &shared.traffic[..3];
        let seq_slice = pipeline.run(slice, &AnalyzeOptions::new()).unwrap().analysis;
        let degen = pipeline
            .run(
                slice,
                &AnalyzeOptions::new()
                    .threads(threads)
                    .mode(ParallelMode::Pooled)
                    .stats(true),
            )
            .unwrap();
        prop_assert_eq!(&seq_slice.devices, &degen.analysis.devices);
        prop_assert_eq!(&seq_slice.udp_ports, &degen.analysis.udp_ports);
        if threads.clamp(1, 64) >= slice.len() {
            let stats = degen.stats.expect("stats were requested");
            prop_assert_eq!(
                stats.merge_time,
                std::time::Duration::ZERO,
                "degenerate pool must not merge (threads={})",
                threads
            );
        }
    }
}

#[test]
fn corrupt_hour_surfaces_codec_error_from_parallel_path() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(13));
    let window = built.scenario.telescope().window;
    let dir = tmpdir("par-corrupt");
    let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
    built.scenario.write_to_store(&store).unwrap();
    // Corrupt an hour in the middle of the window so workers are busy
    // on both sides of it when the failure hits.
    let victim_interval = window.num_hours() / 2;
    let victim = window
        .iter_intervals()
        .find(|(i, _)| *i == victim_interval)
        .map(|(_, h)| h)
        .unwrap();
    let path = store.hour_path(victim);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
    for threads in [1usize, 4, 16] {
        let err = pipeline
            .run(
                &store,
                &AnalyzeOptions::new().window(window).threads(threads),
            )
            .unwrap_err();
        assert!(
            format!("{err}").contains("checksum"),
            "threads={threads} got: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_device_db_correlates_nothing() {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(11));
    let traffic = built.scenario.generate();
    let empty = iotscope_devicedb::DeviceDb::new();
    let pipeline = AnalysisPipeline::new(&empty, 143);
    let analysis = pipeline
        .run(&traffic, &AnalyzeOptions::new())
        .unwrap()
        .analysis;
    assert!(analysis.devices.is_empty());
    assert!(analysis.unmatched_flows > 0);
    let flows: u64 = traffic.iter().map(|h| h.flows.len() as u64).sum();
    assert_eq!(analysis.unmatched_flows, flows);
}
