//! End-to-end validation of the §VI/§VII follow-up features: fuzzy
//! fingerprinting of unindexed devices, malware attribution, botnet
//! clustering, and near-real-time streaming — all over the calibrated
//! paper scenario.

use iotscope_core::behavior;
use iotscope_core::botnet::{self, BotnetConfig};
use iotscope_core::fingerprint::{candidate_iot_devices, FingerprintModel};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::stream::{Alert, StreamConfig, StreamingAnalyzer};
use iotscope_core::{attribution, malicious};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn fixture() -> &'static (BuiltScenario, Vec<HourTraffic>) {
    static FIXTURE: OnceLock<(BuiltScenario, Vec<HourTraffic>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(404));
        let traffic = built.scenario.generate();
        (built, traffic)
    })
}

#[test]
fn fingerprinting_finds_planted_shadow_iot() {
    let (built, traffic) = fixture();
    let vectors = behavior::extract(traffic, &built.inventory.db, 143);
    let model = FingerprintModel::train(&vectors).expect("matched devices exist");
    assert!(model.trained_on() > 500);

    let candidates = candidate_iot_devices(&model, &vectors, 0.55, 20);
    let flagged: HashSet<Ipv4Addr> = candidates.iter().map(|c| c.ip).collect();
    let shadow: HashSet<Ipv4Addr> = built.truth.shadow_iot.iter().copied().collect();

    // Recall: most planted shadow IoT devices are flagged.
    let recovered = shadow.intersection(&flagged).count();
    assert!(
        recovered as f64 >= 0.7 * shadow.len() as f64,
        "recovered {recovered} of {} shadow devices; flagged {:?}",
        shadow.len(),
        flagged
    );
    // Precision: flagged non-shadow sources are rare (noise scans
    // enterprise ports, which the model scores low).
    let false_positives = flagged.difference(&shadow).count();
    assert!(
        false_positives <= flagged.len() / 3,
        "{false_positives} false positives of {} flagged",
        flagged.len()
    );
}

#[test]
fn botnet_clustering_recovers_planted_crews() {
    let (built, traffic) = fixture();
    let vectors = behavior::extract(traffic, &built.inventory.db, 143);
    let clusters = botnet::cluster(&vectors, &BotnetConfig::default());
    assert!(
        clusters.len() >= built.truth.botnets.len(),
        "found {} clusters, planted {}",
        clusters.len(),
        built.truth.botnets.len()
    );
    // Every planted crew maps to one discovered cluster containing most
    // of its members.
    for planted in &built.truth.botnets {
        let planted_set: HashSet<_> = planted.iter().copied().collect();
        let best = clusters
            .iter()
            .map(|c| c.devices.iter().filter(|d| planted_set.contains(d)).count())
            .max()
            .unwrap_or(0);
        assert!(
            best as f64 >= 0.8 * planted.len() as f64,
            "crew of {} only matched {best}",
            planted.len()
        );
    }
}

#[test]
fn attribution_scores_direct_contacts_highest() {
    let (built, traffic) = fixture();
    let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
        .run(traffic, &AnalyzeOptions::new())
        .unwrap()
        .analysis;
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(404)).build(&built.inventory.db, &candidates);
    let vectors = behavior::extract(traffic, &built.inventory.db, 143);
    let findings = attribution::attribute(
        &vectors,
        &built.inventory.db,
        &intel.malware,
        &intel.resolver,
        attribution::DEFAULT_MIN_SCORE,
    );
    assert!(!findings.is_empty());
    // Every direct-contact device from the §V-B join is attributed.
    let attributed: HashSet<_> = findings.iter().map(|f| f.device).collect();
    let index = iotscope_intel::IntelIndex::build(&intel.threats, &intel.malware);
    let scores = iotscope_core::ScoreTable::from_batch(
        &analysis,
        &built.inventory.db,
        &index,
        Default::default(),
    );
    let direct = malicious::malware_correlation(&scores, &intel.malware, &intel.resolver);
    for d in &direct.devices {
        assert!(
            attributed.contains(d),
            "direct-contact device {d} unattributed"
        );
    }
    // Direct-contact findings outrank behavioral-only ones.
    let min_direct = findings
        .iter()
        .filter(|f| f.evidence.direct_contact)
        .map(|f| f.score)
        .fold(f64::INFINITY, f64::min);
    let max_indirect = findings
        .iter()
        .filter(|f| !f.evidence.direct_contact)
        .map(|f| f.score)
        .fold(0.0, f64::max);
    assert!(min_direct >= 0.6);
    assert!(max_indirect <= 0.4 + 1e-9);
    // Findings are sorted descending.
    for pair in findings.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn streaming_alerts_reconstruct_the_event_timeline() {
    let (built, traffic) = fixture();
    let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
    let mut live_alerts: Vec<Alert> = Vec::new();
    for hour in traffic {
        live_alerts.extend(stream.push_hour(hour));
    }
    let (analysis, logged) = stream.finish();
    assert_eq!(live_alerts, logged);

    // Discovery totals equal the batch analysis.
    let discovered: usize = logged
        .iter()
        .filter_map(|a| match a {
            Alert::NewDevices { count, .. } => Some(*count),
            _ => None,
        })
        .sum();
    assert_eq!(discovered, analysis.device_count());

    // The big planted DoS episodes raise spike alerts outside warmup.
    let spikes: Vec<u32> = logged
        .iter()
        .filter_map(|a| match a {
            Alert::DosSpike { interval, .. } => Some(*interval),
            _ => None,
        })
        .collect();
    assert!(
        spikes.iter().any(|i| (53..=56).contains(i))
            || spikes.iter().any(|i| [99, 127].contains(i)),
        "spikes {spikes:?}"
    );

    // The interval-119 sweep raises a consumer port-sweep alert.
    assert!(logged.iter().any(|a| matches!(
        a,
        Alert::PortSweep {
            interval: 119,
            realm: iotscope_devicedb::Realm::Consumer,
            ..
        }
    )));
}
