//! Fused streaming ingest vs the materialized path.
//!
//! The PR-5 contract: streaming an hour file block-by-block into the
//! analyzer ([`decode_hour_visit`] + [`Analyzer::begin_hour`]) must be
//! *bit-identical* to materializing the hour and calling
//! [`Analyzer::ingest_hour`] — same [`Analysis`], same stable metric
//! snapshot — for random v3 hours, at every thread count, and including
//! hours where corrupt blocks are quarantined.

use iotscope_core::{Analysis, Analyzer};
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
use iotscope_devicedb::DeviceDb;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::{IcmpType, TcpFlags};
use iotscope_net::store::{
    decode_hour_visit, decode_hour_with, encode_hour, DecodeOptions, QuarantinedBlock,
    StoreOptions, BLOCK_RECORDS,
};
use iotscope_net::time::UnixHour;
use iotscope_obs::{Registry, Snapshot};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// IOTFT03 layout mirrors for targeting corruption at block payloads.
/// Kept in sync with `iotscope-net`'s (private) constants; the
/// `index_end` assertion below fails loudly if the format drifts.
const HEADER: usize = 7 + 1 + 8 + 4 + 8;
const INDEX_ENTRY: usize = 4 + 4 + 8;

const WINDOW_HOURS: u32 = 4;

fn inventory() -> &'static DeviceDb {
    static DB: OnceLock<DeviceDb> = OnceLock::new();
    DB.get_or_init(|| InventoryBuilder::new(SynthConfig::small(5)).build().db)
}

/// Deterministic, cheap flow generator: proptest shrinks the (seed, n)
/// pair instead of 10k+ individual tuples. Roughly half the sources hit
/// the inventory so both the matched and unmatched analyzer paths run.
fn synth_flows(db: &DeviceDb, seed: u64, n: usize) -> Vec<FlowTuple> {
    let ips: Vec<Ipv4Addr> = db.iter().map(|d| d.ip).collect();
    let mut s = seed | 1;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    (0..n)
        .map(|_| {
            let src = if next() % 2 == 0 {
                ips[next() as usize % ips.len()]
            } else {
                Ipv4Addr::from(next() as u32)
            };
            let dst = Ipv4Addr::from(next() as u32);
            let flow = match next() % 4 {
                0 => FlowTuple::tcp(src, dst, 1024 + (next() % 60000) as u16, 23, TcpFlags::SYN),
                1 => FlowTuple::tcp(
                    src,
                    dst,
                    80,
                    1024 + (next() % 60000) as u16,
                    TcpFlags::SYN | TcpFlags::ACK,
                ),
                2 => FlowTuple::udp(src, dst, 1024 + (next() % 60000) as u16, 53),
                _ => FlowTuple::icmp(src, dst, IcmpType::EchoReply),
            };
            flow.with_packets(1 + (next() % 9) as u32)
        })
        .collect()
}

/// Materialized reference: decode the whole hour, then one
/// `ingest_hour` call.
fn materialized(
    db: &DeviceDb,
    bytes: &[u8],
    hour: UnixHour,
    opts: DecodeOptions,
) -> (Analysis, Vec<QuarantinedBlock>, Snapshot) {
    let registry = Registry::new();
    let decoded = decode_hour_with(bytes, opts).expect("materialized decode succeeds");
    let mut an = Analyzer::with_metrics(db, WINDOW_HOURS, &registry);
    an.ingest_hour(&HourTraffic {
        interval: 1,
        hour,
        flows: decoded.flows,
    });
    (an.finish(), decoded.quarantined, registry.snapshot())
}

/// Fused path: stream blocks straight into the analyzer, no
/// intermediate `Vec<FlowTuple>`.
fn streamed(
    db: &DeviceDb,
    bytes: &[u8],
    opts: DecodeOptions,
) -> (Analysis, Vec<QuarantinedBlock>, Snapshot) {
    let registry = Registry::new();
    let mut an = Analyzer::with_metrics(db, WINDOW_HOURS, &registry);
    let mut ingest = an.begin_hour(1);
    let visited = decode_hour_visit(bytes, opts, &mut ingest).expect("streaming decode succeeds");
    ingest.finish();
    (an.finish(), visited.quarantined, registry.snapshot())
}

fn assert_paths_agree(db: &DeviceDb, bytes: &[u8], hour: UnixHour, opts: DecodeOptions) {
    let (reference, ref_quarantined, ref_snapshot) =
        materialized(db, bytes, hour, DecodeOptions { threads: 1, ..opts });
    for threads in [1, 3] {
        let (analysis, quarantined, snapshot) =
            streamed(db, bytes, DecodeOptions { threads, ..opts });
        assert_eq!(analysis, reference, "analysis drift at threads={threads}");
        assert_eq!(quarantined, ref_quarantined, "quarantine drift");
        assert_eq!(
            snapshot.stable_only(),
            ref_snapshot.stable_only(),
            "stable metric drift at threads={threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean random v3 hours, from empty through several blocks plus a
    /// ragged tail: streaming equals materializing.
    #[test]
    fn streaming_matches_materialized_on_clean_hours(
        seed in any::<u64>(),
        blocks in 0usize..3,
        tail in 0usize..64,
    ) {
        let db = inventory();
        let n = blocks * BLOCK_RECORDS + tail;
        let flows = synth_flows(db, seed, n);
        let hour = UnixHour::new(500_000 + (seed % 1000));
        let bytes = encode_hour(hour, &flows, StoreOptions::default());
        assert_paths_agree(db, &bytes, hour, DecodeOptions::default());
    }

    /// Hours with corrupt blocks: a quarantining streaming decode skips
    /// exactly the blocks the materialized quarantining decode drops,
    /// and a strict decode fails on both paths.
    #[test]
    fn streaming_quarantines_like_materialized(
        seed in any::<u64>(),
        extra_blocks in 1usize..3,
        tail in 1usize..64,
        corrupt in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..4),
    ) {
        let db = inventory();
        let n = extra_blocks * BLOCK_RECORDS + tail;
        let flows = synth_flows(db, seed, n);
        let hour = UnixHour::new(600_000 + (seed % 1000));
        let mut bytes = encode_hour(hour, &flows, StoreOptions::default());

        let total_blocks = n.div_ceil(BLOCK_RECORDS);
        let index_end = HEADER + 4 + total_blocks * INDEX_ENTRY;
        assert!(
            index_end < bytes.len(),
            "layout mirror out of sync with IOTFT03"
        );
        // Flip payload bytes (never header/index): always lands inside
        // some block, always changes its FNV-1a checksum.
        let payload = bytes.len() - index_end;
        for &(pos, mask) in &corrupt {
            bytes[index_end + pos as usize % payload] ^= mask | 1;
        }

        let strict = DecodeOptions { threads: 1, quarantine: false };
        prop_assert!(decode_hour_with(&bytes, strict).is_err());
        let registry = Registry::new();
        let mut an = Analyzer::with_metrics(db, WINDOW_HOURS, &registry);
        {
            // On error the sink holds a prefix; it dies with the ingest.
            let mut ingest = an.begin_hour(1);
            prop_assert!(decode_hour_visit(&bytes, strict, &mut ingest).is_err());
        }

        let quarantine = DecodeOptions { threads: 1, quarantine: true };
        let decoded = decode_hour_with(&bytes, quarantine).expect("quarantine decode succeeds");
        prop_assert!(!decoded.quarantined.is_empty());
        prop_assert!(decoded.quarantined.len() <= total_blocks);
        assert_paths_agree(db, &bytes, hour, quarantine);
    }
}
