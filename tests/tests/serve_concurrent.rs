//! The daemon's epoch-snapshot contract, under concurrency and over
//! the wire.
//!
//! The PR-7 contract: while `TelescopeService::ingest` replays hours,
//! any reader at any moment loads a snapshot whose epoch `k` is
//! *exactly* the analysis of the first `k` ingested hours — equal to a
//! from-scratch batch run over that prefix, not merely consistent with
//! one. Readers never observe a torn or partially-ingested state, and
//! epochs only move forward. The HTTP listener must round-trip the
//! same snapshots over a real socket.

use iotscope_core::stream::StreamConfig;
use iotscope_core::{Analysis, Analyzer, QueryApi};
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig, SynthOutput};
use iotscope_devicedb::DeviceDb;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::{IcmpType, TcpFlags};
use iotscope_net::time::UnixHour;
use iotscope_serve::http::HttpServer;
use iotscope_serve::{Snapshot, TelescopeService};
use iotscope_telescope::HourTraffic;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

const WINDOW_HOURS: u32 = 8;

fn inventory() -> &'static SynthOutput {
    static INV: OnceLock<SynthOutput> = OnceLock::new();
    INV.get_or_init(|| InventoryBuilder::new(SynthConfig::small(9)).build())
}

/// Deterministic, cheap flow generator (same idiom as
/// `fused_streaming`): proptest shrinks the `(seed, n)` pair instead of
/// thousands of tuples. Half the sources hit the inventory so both the
/// matched and unmatched paths run.
fn synth_flows(db: &DeviceDb, seed: u64, n: usize) -> Vec<FlowTuple> {
    let ips: Vec<std::net::Ipv4Addr> = db.iter().map(|d| d.ip).collect();
    let mut s = seed | 1;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    (0..n)
        .map(|_| {
            let src = if next() % 2 == 0 {
                ips[next() as usize % ips.len()]
            } else {
                std::net::Ipv4Addr::from(next() as u32)
            };
            let dst = std::net::Ipv4Addr::from(next() as u32);
            let flow = match next() % 4 {
                0 => FlowTuple::tcp(src, dst, 1024 + (next() % 60000) as u16, 23, TcpFlags::SYN),
                1 => FlowTuple::tcp(
                    src,
                    dst,
                    80,
                    1024 + (next() % 60000) as u16,
                    TcpFlags::SYN | TcpFlags::ACK,
                ),
                2 => FlowTuple::udp(src, dst, 1024 + (next() % 60000) as u16, 53),
                _ => FlowTuple::icmp(src, dst, IcmpType::EchoReply),
            };
            flow.with_packets(1 + (next() % 9) as u32)
        })
        .collect()
}

fn synth_traffic(db: &DeviceDb, seed: u64, num_hours: u32) -> Vec<HourTraffic> {
    (1..=num_hours)
        .map(|i| HourTraffic {
            interval: i,
            hour: UnixHour::new(700_000 + u64::from(i)),
            flows: synth_flows(db, seed ^ (u64::from(i) << 32), 600),
        })
        .collect()
}

/// Batch reference: a from-scratch analysis of the first `k` hours.
fn prefix_analysis(db: &DeviceDb, traffic: &[HourTraffic], k: usize) -> Analysis {
    let mut an = Analyzer::new(db, WINDOW_HOURS);
    for h in &traffic[..k] {
        an.ingest_hour(h);
    }
    an.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Readers hammering `snapshot()` while ingest replays hours only
    /// ever observe exact hour prefixes, in monotone epoch order.
    #[test]
    fn concurrent_readers_observe_exact_hour_prefixes(
        seed in any::<u64>(),
        num_hours in 2u32..=WINDOW_HOURS,
        readers in 1usize..=3,
    ) {
        let inv = inventory();
        let traffic = synth_traffic(&inv.db, seed, num_hours);
        let service = Arc::new(TelescopeService::new(
            inv.db.clone(),
            inv.isps.clone(),
            WINDOW_HOURS,
        ));
        let stop = AtomicBool::new(false);

        let observed: Vec<Vec<(u64, Arc<Snapshot>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let svc = Arc::clone(&service);
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut seen: Vec<(u64, Arc<Snapshot>)> = Vec::new();
                        while !stop.load(Ordering::Acquire) {
                            let snap = svc.snapshot();
                            if seen.last().is_none_or(|(e, _)| *e != snap.epoch) {
                                seen.push((snap.epoch, snap));
                            }
                            std::thread::yield_now();
                        }
                        seen
                    })
                })
                .collect();
            service.ingest(&traffic, StreamConfig::default(), &mut |_| {});
            stop.store(true, Ordering::Release);
            handles
                .into_iter()
                .map(|h| h.join().expect("reader thread"))
                .collect()
        });

        // The settled state is the full window's batch analysis.
        let last = service.snapshot();
        prop_assert_eq!(last.epoch, u64::from(num_hours));
        prop_assert_eq!(last.hours_ingested, num_hours);
        let full = prefix_analysis(&inv.db, &traffic, num_hours as usize);
        prop_assert_eq!(&*last.analysis, &full);

        // Every snapshot any reader caught mid-ingest is bit-identical
        // (up to device-row order, which Analysis equality ignores) to
        // the batch analysis of its epoch's hour prefix.
        let mut references: BTreeMap<u64, Analysis> = BTreeMap::new();
        for seen in observed {
            for window in seen.windows(2) {
                prop_assert!(
                    window[0].0 < window[1].0,
                    "reader observed epochs out of order: {} then {}",
                    window[0].0,
                    window[1].0
                );
            }
            for (epoch, snap) in seen {
                prop_assert!(epoch <= u64::from(num_hours));
                prop_assert_eq!(u64::from(snap.hours_ingested), epoch);
                let reference = references.entry(epoch).or_insert_with(|| {
                    prefix_analysis(&inv.db, &traffic, epoch as usize)
                });
                prop_assert_eq!(
                    &*snap.analysis,
                    &*reference,
                    "epoch {} snapshot is not the analysis of its first {} hours",
                    epoch,
                    epoch
                );
            }
        }
    }
}

/// One GET over a real socket; returns `(status, body)`.
fn get(conn: &mut BufReader<TcpStream>, path: &str) -> (u16, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: keep-alive\r\n\r\n");
    conn.get_mut().write_all(req.as_bytes()).expect("write");
    read_response(conn)
}

fn read_response(conn: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    conn.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        conn.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// The HTTP listener on an ephemeral port serves the same snapshot the
/// in-process API holds, across a keep-alive connection, with correct
/// error statuses.
#[test]
fn http_round_trip_on_ephemeral_port() {
    let inv = inventory();
    let traffic = synth_traffic(&inv.db, 4242, WINDOW_HOURS);
    let service = Arc::new(TelescopeService::new(
        inv.db.clone(),
        inv.isps.clone(),
        WINDOW_HOURS,
    ));
    service.ingest(&traffic, StreamConfig::default(), &mut |_| {});
    let snap = service.snapshot();
    let api = snap.query(service.db(), service.isps());
    let summary = api.summary();

    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("ephemeral bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut conn = BufReader::new(stream);

    // Three requests over one keep-alive connection.
    let (status, body) = get(&mut conn, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = get(&mut conn, "/summary");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"epoch\":{}", summary.epoch)),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"devices\":{}", summary.devices)),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"total_packets\":{}", summary.total_packets)),
        "{body}"
    );

    let dev = snap.analysis.compromised_devices()[0];
    let (status, body) = get(&mut conn, &format!("/device/{}", dev.0));
    assert_eq!(status, 200);
    assert!(body.contains("\"ip\":"), "{body}");

    // Error statuses over the same connection.
    let (status, _) = get(&mut conn, "/device/not-a-number");
    assert_eq!(status, 400);
    let (status, body) = get(&mut conn, "/no-such-endpoint");
    assert_eq!(status, 404);
    assert!(body.contains("error"), "{body}");

    // Non-GET methods are refused with 405.
    conn.get_mut()
        .write_all(b"POST /summary HTTP/1.1\r\nHost: test\r\n\r\n")
        .expect("write POST");
    let (status, _) = read_response(&mut conn);
    assert_eq!(status, 405);

    // A query string is routing noise: `/summary?probe=1` must hit the
    // `/summary` handler and return the identical body.
    let (plain_status, plain_body) = get(&mut conn, "/summary");
    let (status, body) = get(&mut conn, "/summary?probe=1&verbose=true");
    assert_eq!(status, 200);
    assert_eq!((status, body), (plain_status, plain_body));
}

/// HTTP/1.0 semantics: without a `Connection` header the server must
/// answer and then close (1.0 defaults to close, not keep-alive), while
/// an explicit `Connection: keep-alive` opts the connection back in.
#[test]
fn http_1_0_connection_defaults_per_protocol() {
    let inv = inventory();
    let traffic = synth_traffic(&inv.db, 777, 3);
    let service = Arc::new(TelescopeService::new(
        inv.db.clone(),
        inv.isps.clone(),
        WINDOW_HOURS,
    ));
    service.ingest(&traffic, StreamConfig::default(), &mut |_| {});
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("ephemeral bind");

    // Bare HTTP/1.0 request: served, then the server closes promptly —
    // a 1.0 client that waits for EOF to delimit the response must not
    // hang until the 5 s idle timeout.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    conn.get_mut()
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("write 1.0 GET");
    let (status, body) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let mut rest = Vec::new();
    match conn.read_to_end(&mut rest) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} trailing bytes after a 1.0 response"),
        Err(e) => panic!("server held a 1.0 connection open ({e})"),
    }

    // Explicit `Connection: keep-alive` overrides the 1.0 default: a
    // second request on the same connection still works.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    let mut conn = BufReader::new(stream);
    for _ in 0..2 {
        conn.get_mut()
            .write_all(b"GET /healthz HTTP/1.0\r\nHost: test\r\nConnection: keep-alive\r\n\r\n")
            .expect("write 1.0 keep-alive GET");
        let (status, _) = read_response(&mut conn);
        assert_eq!(status, 200);
    }
}
