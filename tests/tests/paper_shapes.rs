//! End-to-end shape validation against the paper's published results.
//!
//! One full-population run (331k-device inventory, 26,881 designated
//! compromised devices) at a reduced packet scale; every assertion checks
//! a *shape* the paper reports — who wins, by roughly what factor, where
//! events fall — not absolute packet counts.

use iotscope_core::analysis::Analysis;
use iotscope_core::classify::TrafficClass;
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::{characterize, dos, malicious, scan, udp};
use iotscope_devicedb::{ConsumerKind, CpsService, Realm};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::ThreatCategory;
use iotscope_net::ports::{ScanService, ServiceRegistry};
use iotscope_telescope::paper::{BuiltScenario, PaperScenario, PaperScenarioConfig};
use std::sync::OnceLock;

const SEED: u64 = 20170412;
const SCALE: f64 = 0.004;

struct Fixture {
    built: BuiltScenario,
    analysis: Analysis,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let built = PaperScenario::build(PaperScenarioConfig::paper(SEED, SCALE));
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new().threads(8))
            .unwrap()
            .analysis;
        Fixture { built, analysis }
    })
}

#[test]
fn headline_population_counts() {
    let f = fixture();
    // §III-B: 26,881 compromised devices, 57% consumer.
    let (consumer, cps) = f.analysis.compromised_counts();
    assert_eq!(consumer + cps, 26_881);
    assert_eq!(consumer, 15_299);
    assert_eq!(cps, 11_582);
    let consumer_share = consumer as f64 / 26_881.0;
    assert!((0.55..=0.59).contains(&consumer_share));
}

#[test]
fn fig_1b_compromised_country_ranking() {
    let f = fixture();
    let rows = characterize::compromised_by_country(&f.analysis, &f.built.inventory.db);
    // Russia #1 (24.5%), China #2 (8.6%), U.S. #3 (8.1%).
    assert_eq!(rows[0].country.code(), "RU");
    let ru_share = rows[0].total() as f64 / 26_881.0;
    assert!((0.20..=0.30).contains(&ru_share), "RU share {ru_share}");
    let top3: Vec<&str> = rows[..3].iter().map(|r| r.country.code()).collect();
    assert!(top3.contains(&"CN"));
    assert!(top3.contains(&"US"));
    // Percent-compromised contrast: Russia ≈31% vs U.S. ≈2.4%.
    let ru_pct = rows[0].pct_compromised.unwrap();
    let us_pct = rows
        .iter()
        .find(|r| r.country.code() == "US")
        .unwrap()
        .pct_compromised
        .unwrap();
    assert!(ru_pct > 20.0, "RU pct {ru_pct}");
    assert!(us_pct < 6.0, "US pct {us_pct}");
    assert!(ru_pct > 5.0 * us_pct);
}

#[test]
fn fig_1a_deployment_ranking() {
    let f = fixture();
    let rows = characterize::country_deployment(&f.built.inventory.db);
    // U.S. hosts the most devices (25%), well ahead of #2.
    assert_eq!(rows[0].country.code(), "US");
    let us_share = rows[0].total() as f64 / f.built.inventory.db.len() as f64;
    assert!((0.20..=0.28).contains(&us_share), "US share {us_share}");
    assert!(rows[0].total() > 2 * rows[1].total());
    // CPS-heavier countries per Fig 1a.
    for code in ["CN", "FR", "CA", "VN", "TW", "ES"] {
        let row = rows.iter().find(|r| r.country.code() == code).unwrap();
        assert!(row.cps > row.consumer, "{code} should be CPS-heavy");
    }
}

#[test]
fn fig_2_discovery_curve() {
    let f = fixture();
    let curve = f.analysis.discovery_curve();
    assert_eq!(curve.len(), 6);
    // ≈46% discovered on day one.
    let day0 = curve[0].0 as f64 / 26_881.0;
    assert!((0.40..=0.53).contains(&day0), "day-0 fraction {day0}");
    // ≈2,900 new devices per following day.
    for d in 1..6 {
        let new = curve[d].0 - curve[d - 1].0;
        assert!((1_800..=4_200).contains(&new), "day {d} discovered {new}");
    }
    assert_eq!(curve[5].0, 26_881);
}

#[test]
fn fig_3_consumer_kind_mix() {
    let f = fixture();
    let rows = characterize::consumer_kind_breakdown(&f.analysis, &f.built.inventory.db);
    // Routers 52.4% > cameras 25.2% > printers 18% > storage 3.6%.
    assert_eq!(rows[0].0, ConsumerKind::Router);
    assert!(
        (48.0..=57.0).contains(&rows[0].2),
        "router pct {}",
        rows[0].2
    );
    assert_eq!(rows[1].0, ConsumerKind::IpCamera);
    assert!((21.0..=29.0).contains(&rows[1].2));
    assert_eq!(rows[2].0, ConsumerKind::Printer);
    assert!((14.0..=22.0).contains(&rows[2].2));
    assert_eq!(rows[3].0, ConsumerKind::NetworkStorage);
}

#[test]
fn table_i_consumer_isps() {
    let f = fixture();
    let rows = characterize::top_isps(
        &f.analysis,
        &f.built.inventory.db,
        &f.built.inventory.isps,
        Realm::Consumer,
        5,
    );
    // JSC ER-Telecom dominates with ≈27.6%.
    assert_eq!(rows[0].name, "JSC ER-Telecom");
    assert!((22.0..=34.0).contains(&rows[0].pct), "{}", rows[0].pct);
    // The rest of the table is long-tailed (#2 ≲ 5%).
    assert!(rows[1].pct < 6.0);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"PT Telkom"));
}

#[test]
fn table_ii_cps_isps() {
    let f = fixture();
    let rows = characterize::top_isps(
        &f.analysis,
        &f.built.inventory.db,
        &f.built.inventory.isps,
        Realm::Cps,
        5,
    );
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    for expected in ["Rostelecom", "Korea Telecom", "Turk Telekom"] {
        assert!(
            names.contains(&expected),
            "{expected} missing from {names:?}"
        );
    }
    // Unlike Table I, no CPS ISP dominates (top ≈4.5%).
    assert!(rows[0].pct < 8.0, "top CPS ISP pct {}", rows[0].pct);
}

#[test]
fn table_iii_cps_services() {
    let f = fixture();
    let rows = characterize::cps_service_breakdown(&f.analysis, &f.built.inventory.db);
    assert_eq!(rows[0].0, CpsService::TelventOasysDna);
    assert!(
        (16.0..=23.0).contains(&rows[0].2),
        "Telvent pct {}",
        rows[0].2
    );
    assert_eq!(rows[1].0, CpsService::SncGene);
    let top10: Vec<CpsService> = rows[..10].iter().map(|r| r.0).collect();
    assert!(top10.contains(&CpsService::NiagaraFox));
    assert!(top10.contains(&CpsService::Mqtt));
    assert!(top10.contains(&CpsService::ModbusTcp));
    // Niagara Fox above MQTT, as in Table III.
    let pos = |s: CpsService| top10.iter().position(|x| *x == s).unwrap();
    assert!(pos(CpsService::NiagaraFox) < pos(CpsService::Mqtt));
}

#[test]
fn fig_4_protocol_mix() {
    let f = fixture();
    let mix = characterize::protocol_mix(&f.analysis);
    let total: f64 = mix.iter().flat_map(|r| r.iter()).sum();
    assert!((total - 100.0).abs() < 1e-6);
    // TCP dominates both realms; consumer TCP ≈46.8% > CPS TCP ≈38.8%.
    assert!(
        mix[0][0] > 40.0 && mix[0][0] < 55.0,
        "consumer TCP {}",
        mix[0][0]
    );
    assert!(
        mix[1][0] > 32.0 && mix[1][0] < 48.0,
        "cps TCP {}",
        mix[1][0]
    );
    assert!(mix[0][0] > mix[1][0]);
    // UDP: consumer ≈6.5% > CPS ≈3.9%.
    assert!(mix[0][1] > mix[1][1]);
    // ICMP is the smallest class in both realms.
    assert!(mix[0][2] < mix[0][1]);
    assert!(mix[1][2] < mix[1][0]);
}

#[test]
fn section_iv_per_device_packets_mann_whitney() {
    let f = fixture();
    // §IV: packets per device significantly greater for CPS (p < 0.0001).
    let mw = characterize::realm_packet_test(&f.analysis).unwrap();
    assert!(mw.z > 3.0, "z = {}", mw.z);
    assert!(mw.p_value < 1e-3, "p = {}", mw.p_value);
}

#[test]
fn udp_summary_and_correlation() {
    let f = fixture();
    let s = udp::summary(&f.analysis);
    // §IV-A1: 25,242 devices, 60% consumer, 63% of packets from consumer.
    assert!((24_000..=25_500).contains(&s.devices), "{}", s.devices);
    assert!((0.57..=0.68).contains(&s.consumer_packet_share));
    assert!((0.56..=0.64).contains(&s.consumer_device_share));
    // Consumer targets far more destinations and ports per hour than CPS.
    assert!(s.consumer_mean_dsts > 1.5 * s.cps_mean_dsts);
    assert!(s.consumer_mean_ports > 1.5 * s.cps_mean_ports);
    // §IV-A1: strong positive ports↔destinations correlation (r = 0.95).
    let c = udp::ports_ips_correlation(&f.analysis, Realm::Consumer).unwrap();
    assert!(c.r > 0.9, "r = {}", c.r);
    assert!(c.p_value < 1e-4);
}

#[test]
fn table_iv_udp_ports() {
    let f = fixture();
    let rows = udp::top_ports(&f.analysis, &ServiceRegistry::standard(), 10);
    assert_eq!(rows.len(), 10);
    // Port 37547 (Netcore backdoor) leads with ≈2.5% of UDP packets.
    assert_eq!(rows[0].port, 37547);
    assert!(
        (1.5..=3.5).contains(&rows[0].pct),
        "37547 pct {}",
        rows[0].pct
    );
    let ports: Vec<u16> = rows.iter().map(|r| r.port).collect();
    for expected in [137u16, 53413, 32124, 28183, 5353, 53, 3544, 1194] {
        assert!(
            ports.contains(&expected),
            "port {expected} missing: {ports:?}"
        );
    }
    // Top 10 take ≈10.7% of UDP packets; the rest spreads over 60k+ ports.
    let top10_pct: f64 = rows.iter().map(|r| r.pct).sum();
    assert!((6.0..=16.0).contains(&top10_pct), "top-10 pct {top10_pct}");
    assert!(udp::distinct_ports(&f.analysis) > 30_000);
    // The broad-spray ports are hit by far more devices than the
    // dedicated-scanner ports.
    let dev = |p: u16| rows.iter().find(|r| r.port == p).unwrap().devices;
    assert!(dev(37547) > 4 * dev(137));
}

#[test]
fn backscatter_shapes() {
    let f = fixture();
    let s = dos::summary(&f.analysis, 400);
    // §IV-B: 839 victims, 53% CPS, ≈8.2% of traffic, 73% of packets CPS.
    assert_eq!(s.victims, 839);
    assert!((0.49..=0.58).contains(&s.cps_victim_share));
    assert!((0.05..=0.13).contains(&s.backscatter_traffic_share));
    assert!((0.62..=0.88).contains(&s.cps_packet_share));
    // Hourly backscatter significantly larger for CPS (Z = −5.95).
    let mw = dos::backscatter_realm_test(&f.analysis).unwrap();
    assert!(mw.z < -3.0, "z = {}", mw.z);
    assert!(mw.p_value < 1e-3);
}

#[test]
fn fig_7_dos_spike_schedule() {
    let f = fixture();
    let spikes = dos::detect_spikes(&f.analysis, 6.0);
    let intervals: Vec<u32> = spikes.iter().map(|e| e.interval).collect();
    // The planted episode intervals (§IV-B1).
    for expected in [6u32, 7, 8, 53, 54, 55, 99, 127] {
        assert!(
            intervals.contains(&expected),
            "interval {expected} missing: {intervals:?}"
        );
    }
    // Each episode dominated by a single victim.
    for e in &spikes {
        if [6, 7, 8, 53, 54, 55, 99, 127].contains(&e.interval) {
            assert!(
                e.victim_share > 0.6,
                "interval {} share {}",
                e.interval,
                e.victim_share
            );
        }
    }
    // Intervals 6-8 and 53-55 share one victim; 99/127 share another.
    let victim_at = |i: u32| spikes.iter().find(|e| e.interval == i).unwrap().victim;
    assert_eq!(victim_at(6), victim_at(53));
    assert_eq!(victim_at(99), victim_at(127));
    assert_ne!(victim_at(6), victim_at(99));
}

#[test]
fn fig_8_victim_geography() {
    let f = fixture();
    let rows = dos::victim_countries(&f.analysis, &f.built.inventory.db);
    // China hosts the most victims and generates ≈52% of backscatter.
    assert_eq!(rows[0].country.code(), "CN");
    let total_pkts: u64 = rows.iter().map(|r| r.packets).sum();
    let cn_share = rows[0].packets as f64 / total_pkts as f64;
    assert!((0.35..=0.65).contains(&cn_share), "CN pkt share {cn_share}");
    // Singapore and Indonesia lead consumer victims.
    let mut by_consumer: Vec<_> = rows.iter().collect();
    by_consumer.sort_by_key(|r| std::cmp::Reverse(r.consumer_victims));
    let top_consumer: Vec<&str> = by_consumer[..3].iter().map(|r| r.country.code()).collect();
    assert!(top_consumer.contains(&"SG"), "{top_consumer:?}");
    assert!(top_consumer.contains(&"ID"), "{top_consumer:?}");
    // China and the U.S. lead CPS victims.
    let mut by_cps: Vec<_> = rows.iter().collect();
    by_cps.sort_by_key(|r| std::cmp::Reverse(r.cps_victims));
    assert_eq!(by_cps[0].country.code(), "CN");
    let top_cps: Vec<&str> = by_cps[..3].iter().map(|r| r.country.code()).collect();
    assert!(top_cps.contains(&"US"), "{top_cps:?}");
}

#[test]
fn table_v_scan_services() {
    let f = fixture();
    let rows = scan::protocol_table(&f.analysis);
    // Telnet ≈50.2% of scan packets, ≥4× HTTP (9.4%), then SSH (7.7%).
    assert_eq!(rows[0].service, Some(ScanService::Telnet));
    assert!(
        (45.0..=56.0).contains(&rows[0].pct),
        "telnet pct {}",
        rows[0].pct
    );
    assert_eq!(rows[1].service, Some(ScanService::Http));
    assert!(rows[0].packets > 4 * rows[1].packets);
    assert_eq!(rows[2].service, Some(ScanService::Ssh));
    // Realm splits per Table V.
    let row = |s: ScanService| rows.iter().find(|r| r.service == Some(s)).unwrap();
    assert!((55.0..=72.0).contains(&row(ScanService::Telnet).consumer_pct));
    assert!(row(ScanService::Http).consumer_pct > 88.0);
    assert!(row(ScanService::Ssh).cps_pct > 55.0);
    assert!(row(ScanService::Kerberos).consumer_pct > 90.0);
    assert!(row(ScanService::Irdmi).consumer_pct > 90.0);
    assert!(row(ScanService::BackroomNet).cps_pct > 99.0);
    // Device counts: HTTP/Kerberos/iRDMI scanned by the most devices.
    assert!(row(ScanService::Http).consumer_devices > 1_000);
    assert!(row(ScanService::Kerberos).consumer_devices > 800);
    assert!(row(ScanService::Irdmi).consumer_devices > 800);
    assert!(row(ScanService::BackroomNet).cps_devices <= 3);
    // Named coverage ≈93.3%.
    let cov = scan::named_coverage(&f.analysis);
    assert!((90.0..=96.5).contains(&cov), "coverage {cov}");
}

#[test]
fn scan_summary_shapes() {
    let f = fixture();
    let s = scan::summary(&f.analysis);
    // §IV-C: 12,363 TCP scanners, 55% consumer.
    assert!(
        (12_000..=12_700).contains(&s.tcp_devices),
        "{}",
        s.tcp_devices
    );
    assert!((0.52..=0.58).contains(&s.consumer_device_share));
    // Consumer generates more scan packets per hour (382k vs 318k scaled).
    assert!(s.consumer_mean_packets > s.cps_mean_packets);
    assert!(s.consumer_mean_packets < 2.0 * s.cps_mean_packets);
    // ICMP scanning: tiny share, 56 devices, consumer-dominated (93%).
    assert_eq!(s.icmp_devices, 56);
    assert!(s.icmp_consumer_packet_share > 0.80);
    let icmp_share = s.icmp_packets as f64 / f.analysis.total_packets() as f64;
    assert!(icmp_share < 0.01, "icmp share {icmp_share}");
    // §IV-C: no strong correlation between hourly scanners and packets.
    let c = scan::scanners_vs_packets_correlation(&f.analysis).unwrap();
    assert!(c.r.abs() < 0.45, "r = {}", c.r);
}

#[test]
fn fig_9_port_diversity_and_interval_119() {
    let f = fixture();
    // The Dominican-Republic camera sweep: a huge port spike at 119.
    let spikes = scan::port_spike_intervals(&f.analysis, Realm::Consumer, 8.0);
    assert!(spikes.contains(&119), "spikes {spikes:?}");
    let consumer_ports = &scan::hourly(&f.analysis, Realm::Consumer).dst_ports;
    assert!(
        consumer_ports[118] > 9_000,
        "interval-119 ports {}",
        consumer_ports[118]
    );
    // Outside the sweep, CPS sweeps more ports per hour than consumer.
    let cps_ports = &scan::hourly(&f.analysis, Realm::Cps).dst_ports;
    let mid = |v: &[u64]| {
        let mut s: Vec<u64> = v.to_vec();
        s.sort_unstable();
        s[s.len() / 2]
    };
    assert!(
        mid(cps_ports) as f64 > 1.3 * mid(consumer_ports) as f64,
        "cps median {} consumer median {}",
        mid(cps_ports),
        mid(consumer_ports)
    );
}

#[test]
fn fig_10_service_time_series() {
    let f = fixture();
    let series = scan::top5_series(&f.analysis);
    // BackroomNet essentially silent before 113 (only stray random-port
    // probes), intensive 113..=142.
    let backroom: Vec<u64> = series.iter().map(|r| r[3]).collect();
    let before: u64 = backroom[..112].iter().sum();
    let after: u64 = backroom[112..142].iter().sum();
    assert!(after > 0);
    assert!(
        (before as f64) < 0.02 * after as f64,
        "before {before} after {after}"
    );
    assert!(backroom[115] > 0);
    assert!(backroom[130] > 0);
    // SSH bursts at 32 and 69 dominate its series.
    let ssh: Vec<u64> = series.iter().map(|r| r[2]).collect();
    let mut sorted = ssh.clone();
    sorted.sort_unstable();
    let median = sorted[71];
    assert!(
        ssh[31] as f64 > 3.0 * median as f64,
        "ssh[32] {} median {median}",
        ssh[31]
    );
    assert!(ssh[68] as f64 > 3.0 * median as f64);
    // Telnet leads every sampled interval.
    for i in [10usize, 50, 90, 130] {
        assert!(series[i][0] > series[i][1], "telnet < http at {}", i + 1);
    }
    // HTTP grows after interval 92 (the Fig 10 ramp).
    let http: Vec<u64> = series.iter().map(|r| r[1]).collect();
    let early: u64 = http[20..44].iter().sum();
    let late: u64 = http[115..139].iter().sum();
    assert!(
        late as f64 > 1.2 * early as f64,
        "early {early} late {late}"
    );
}

#[test]
fn section_v_intel_results() {
    let f = fixture();
    let candidates = malicious::select_candidates(&f.analysis, 4_000);
    assert!(
        (8_500..=8_900).contains(&candidates.len()),
        "{}",
        candidates.len()
    );
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(SEED)).build(&f.built.inventory.db, &candidates);
    let index = iotscope_intel::IntelIndex::build(&intel.threats, &intel.malware);
    let scores = iotscope_core::ScoreTable::from_batch(
        &f.analysis,
        &f.built.inventory.db,
        &index,
        Default::default(),
    );
    let summary = malicious::threat_summary(&scores, &f.built.inventory.db, &index, &candidates);
    // §V-A: 816 devices (9.2%) flagged.
    let flag_rate = summary.flagged.len() as f64 / summary.explored as f64;
    assert!((0.07..=0.12).contains(&flag_rate), "flag rate {flag_rate}");
    // Table VI ordering.
    let pct = |cat: ThreatCategory| summary.rows.iter().find(|r| r.category == cat).unwrap().pct;
    assert!(pct(ThreatCategory::Scanning) > 90.0);
    assert!(pct(ThreatCategory::Miscellaneous) > pct(ThreatCategory::BruteForce));
    assert!(pct(ThreatCategory::BruteForce) > pct(ThreatCategory::Malware));
    assert!(pct(ThreatCategory::Phishing) < 3.0);
    // §V-A: malware links skew CPS (91 vs 26).
    assert!(summary.cps_malware_devices > summary.consumer_malware_devices);

    // Fig 11: flagged devices' packet CDF is a subset with similar shape.
    let (all, flagged) = malicious::packet_cdfs(&scores, &candidates);
    assert_eq!(all.len(), candidates.len());
    assert_eq!(flagged.len(), summary.flagged.len());
    assert!(flagged.quantile(0.5).unwrap() > 0.0);

    // Table VII: the malware correlation surfaces all 11 families.
    let findings = malicious::malware_correlation(&scores, &intel.malware, &intel.resolver);
    assert_eq!(findings.families.len(), 11);
    assert_eq!(findings.hashes.len(), 24);
    assert!(findings.domains.len() <= 33 && findings.domains.len() > 20);
    assert!(
        (80..=150).contains(&findings.devices.len()),
        "{}",
        findings.devices.len()
    );
}

#[test]
fn traffic_class_totals_are_consistent() {
    let f = fixture();
    // Per-class sums over devices match the series sums.
    let scan_from_obs: u64 = f
        .analysis
        .devices
        .rows()
        .map(|o| o.packets(TrafficClass::TcpScan))
        .sum();
    let scan_from_series: u64 = f.analysis.tcp_scan[0].packets.iter().sum::<u64>()
        + f.analysis.tcp_scan[1].packets.iter().sum::<u64>();
    assert_eq!(scan_from_obs, scan_from_series);
    let bs_from_obs: u64 = f
        .analysis
        .devices
        .rows()
        .map(|o| o.packets(TrafficClass::Backscatter))
        .sum();
    let bs_from_series: u64 = f.analysis.backscatter_hourly[0].iter().sum::<u64>()
        + f.analysis.backscatter_hourly[1].iter().sum::<u64>();
    assert_eq!(bs_from_obs, bs_from_series);
    // Noise exists and was excluded.
    assert!(f.analysis.unmatched_flows > 0);
}
