//! Vendored stub of `serde_derive`: emits empty `Serialize` /
//! `Deserialize` marker impls. The workspace derives these traits on
//! plain (non-generic) types but never serializes through serde, so
//! marker impls are all that is required.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct` / `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            // Skip attribute groups, visibility, doc comments.
            _ => continue,
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name to derive for");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
