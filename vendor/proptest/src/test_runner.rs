//! The case loop behind `proptest!`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases (the proptest 1.x constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the whole test fails.
    Fail(String),
    /// `prop_assume!` rejection: the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An assumption rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cfg.cases` sampled cases of `test` against `strategy`. Panics
/// on the first failing case with its case number; rejected cases are
/// redrawn (up to a bounded number of attempts).
pub fn run<S, F>(cfg: ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let max_rejects = cfg.cases.saturating_mul(10).max(1000);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < cfg.cases {
        let value = strategy.sample(&mut rng);
        match test(value) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!("{name}: too many prop_assume! rejections (last: {why})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case}/{} failed: {msg}", cfg.cases);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed `in`/typed params, multiline, trailing comma.
        #[test]
        fn macro_handles_param_forms(
            a in 0u32..10,
            b: bool,
            v in crate::collection::vec(any::<u8>(), 0..5),
        ) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn assume_discards(x in 0u32..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x: u16) {
            let wide = u32::from(x);
            prop_assert!(wide <= u32::from(u16::MAX));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_case_panics() {
        crate::test_runner::run(
            ProptestConfig::with_cases(8),
            "failing_case_panics",
            (0u32..10,),
            |(x,)| {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            },
        );
    }
}
