//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi_inclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi_inclusive)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
