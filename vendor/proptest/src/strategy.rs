//! The [`Strategy`] trait and core combinators. A strategy here is a
//! sampler: `sample` draws one value from a deterministic RNG. There
//! is no value tree and no shrinking.

use rand::distributions::SampleUniform;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from one or more arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
