//! Tiny regex-shaped string generator covering the patterns used in
//! this workspace: a sequence of units, where a unit is `\PC` (any
//! printable, non-control char), a `[...]` class (literals and `a-z`
//! ranges), or a literal char, optionally followed by `{m}`, `{m,n}`,
//! `?`, `*`, or `+` repetition.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A sprinkling of non-ASCII printable chars so `\PC` exercises
/// multi-byte UTF-8 paths.
const NON_ASCII: &[char] = &['é', 'ß', 'λ', '→', '日', '☃', '\u{00a0}'];

enum Class {
    /// `\PC`: printable (not a Unicode control char).
    Printable,
    /// `[...]`: explicit set.
    Set(Vec<char>),
    /// A literal char.
    Lit(char),
}

impl Class {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            Class::Printable => {
                // Mostly ASCII printable, occasionally non-ASCII.
                if rng.gen_range(0u32..8) == 0 {
                    *NON_ASCII.choose(rng).expect("non-empty")
                } else {
                    char::from(rng.gen_range(0x20u8..0x7f))
                }
            }
            Class::Set(chars) => *chars.choose(rng).expect("empty [..] class"),
            Class::Lit(c) => *c,
        }
    }
}

struct Unit {
    class: Class,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Unit> {
    let mut chars = pattern.chars().peekable();
    let mut units = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // Only `\PC` (complement of the control category) is
                    // supported.
                    let got = chars.next();
                    assert_eq!(got, Some('C'), "unsupported \\P class in {pattern:?}");
                    Class::Printable
                }
                Some(esc) => Class::Lit(esc),
                None => panic!("dangling backslash in {pattern:?}"),
            },
            '[' => {
                let mut set = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().expect("open range in class");
                                assert!(hi != ']', "open range in class");
                                for cp in lo..=hi {
                                    set.push(cp);
                                }
                            } else {
                                set.push(lo);
                            }
                        }
                        None => panic!("unterminated [..] in {pattern:?}"),
                    }
                }
                Class::Set(set)
            }
            lit => Class::Lit(lit),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (m.parse().expect("bad {m,n}"), n.parse().expect("bad {m,n}")),
                    None => {
                        let m = spec.parse().expect("bad {m}");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        units.push(Unit { class, min, max });
    }
    units
}

/// Generate one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        let n = if unit.min == unit.max {
            unit.min
        } else {
            rng.gen_range(unit.min..=unit.max)
        };
        for _ in 0..n {
            out.push(unit.class.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_pattern_respects_set_and_len() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_pattern("[a-z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern_has_no_control_chars() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = sample_pattern("\\PC{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_pattern("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
    }
}
