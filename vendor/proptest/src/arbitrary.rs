//! `any::<T>()`: the whole-type strategy, backed by rand's standard
//! distribution.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use std::marker::PhantomData;

/// Strategy over the full range of `T`.
pub struct Any<T>(PhantomData<T>);

/// Uniform values over all of `T` (integers), `[0, 1)` (floats), or a
/// fair coin (`bool`).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        Standard.sample(rng)
    }
}
