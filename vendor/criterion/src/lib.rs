//! Vendored stub of the `criterion` benchmarking surface this
//! workspace uses. It really measures wall-clock time (auto-calibrated
//! iteration counts, a configurable number of samples, median/mean
//! reporting with optional throughput), but does no statistical
//! analysis, plotting, or baseline comparison.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How much work one pass of the benchmark routine represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how to amortize `iter_batched` setup; ignored by this stub
/// beyond API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.into_id(), None, sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (report output happens per-benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; collects timed samples.
pub struct Bencher {
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let mut time = |iters: u64| -> f64 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed().as_secs_f64()
        };
        // Calibrate: grow the batch until it takes >= ~2 ms.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = time(iters);
            if t >= 2e-3 || iters >= 1 << 20 {
                break (t / iters as f64).max(1e-12);
            }
            iters = iters.saturating_mul(4);
        };
        let batch = ((2e-3 / per_iter) as u64).clamp(1, 1 << 20);
        for _ in 0..self.sample_size {
            self.samples.push(time(batch) / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a single pass.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed().as_secs_f64().max(1e-12);
        let batch = ((2e-3 / per_iter) as u64).clamp(1, 1 << 16);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {:>10}/s", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {:>10}B/s", si(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{name:<48} time: [{} .. {}]{rate}",
        fmt_time(best),
        fmt_time(median),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
