//! Vendored stub of `serde` covering what this workspace uses: the
//! `Serialize` / `Deserialize` trait names (as markers) plus the
//! derives re-exported under the `derive` feature. Nothing in the
//! workspace serializes through serde — the derives exist so public
//! types keep their familiar trait bounds.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    std::net::Ipv4Addr,
    std::net::Ipv6Addr,
    std::net::IpAddr,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
