//! Vendored stub of the `bytes` crate covering the surface this
//! workspace uses: the [`Buf`] / [`BufMut`] traits with big-endian
//! integer accessors, implemented for `&[u8]` and `Vec<u8>`.
//!
//! Semantics match the real crate where it matters here: reads advance
//! the cursor and panic on underflow.

#![forbid(unsafe_code)]

/// Read side of a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as does the real `bytes` crate).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        copy_from_chunk(self, &mut raw);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        copy_from_chunk(self, &mut raw);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        copy_from_chunk(self, &mut raw);
        u64::from_be_bytes(raw)
    }
}

fn copy_from_chunk<B: Buf + ?Sized>(buf: &mut B, out: &mut [u8]) {
    assert!(
        buf.remaining() >= out.len(),
        "buffer underflow: need {}, have {}",
        out.len(),
        buf.remaining()
    );
    out.copy_from_slice(&buf.chunk()[..out.len()]);
    buf.advance(out.len());
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write side of a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0123_4567_89ab_cdef);
        let mut r = buf.as_slice();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0123_4567_89ab_cdef);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
