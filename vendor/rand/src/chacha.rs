//! ChaCha block function and the 4-block buffered generator used by
//! [`crate::rngs::StdRng`], following rand_chacha 0.3: 64-bit block
//! counter starting at 0, 64-bit stream id 0, buffer of 4 consecutive
//! blocks (64 `u32` words), `next_u64` = `lo | hi << 32` from two
//! consecutive words.

const BUF_WORDS: usize = 64; // 4 blocks x 16 words

#[derive(Clone)]
pub struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            // Start exhausted so the first draw generates a block.
            index: BUF_WORDS,
        }
    }

    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        state
    }

    fn refill(&mut self) {
        for b in 0..4 {
            let block = self.block(self.counter.wrapping_add(b as u64));
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    /// Two consecutive words, low then high — rand_core `BlockRng`
    /// semantics, including the buffer-boundary case.
    pub fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            u64::from(self.buf[index]) | (u64::from(self.buf[index + 1]) << 32)
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            u64::from(self.buf[0]) | (u64::from(self.buf[1]) << 32)
        } else {
            // index == BUF_WORDS - 1: straddle the refill.
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            lo | (u64::from(self.buf[0]) << 32)
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, adapted: ChaCha20 block with the
    /// RFC key/counter/nonce. Our state layout uses a 64-bit counter in
    /// words 12-13 and a 64-bit stream in words 14-15; the RFC uses a
    /// 32-bit counter word and a 96-bit nonce. The RFC vector's nonce is
    /// 00:00:00:09:00:00:00:4a:00:00:00:00, which maps to word13=0x09000000,
    /// word14=0x4a000000, word15=0 — representable here as
    /// counter = 1 | (0x09000000 << 32), stream = 0x4a000000.
    #[test]
    fn chacha20_rfc8439_block() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut core: ChaChaCore<20> = ChaChaCore::from_seed(seed);
        core.stream = 0x4a00_0000;
        let counter = 1u64 | (0x0900_0000u64 << 32);
        let block = core.block(counter);
        assert_eq!(block[0], 0xe4e7_f110);
        assert_eq!(block[1], 0x1559_3bd1);
        assert_eq!(block[15], 0x4e3c_50a2);
    }

    #[test]
    fn word_stream_is_contiguous_across_refills() {
        let mut a: ChaChaCore<12> = ChaChaCore::from_seed([7; 32]);
        let mut b: ChaChaCore<12> = ChaChaCore::from_seed([7; 32]);
        // 200 u32 draws == 100 u64 draws when no straddling occurs
        // (both consume words pairwise from even indices).
        let words: Vec<u32> = (0..200).map(|_| a.next_u32()).collect();
        for i in 0..100 {
            let w = b.next_u64();
            assert_eq!(w as u32, words[2 * i]);
            assert_eq!((w >> 32) as u32, words[2 * i + 1]);
        }
    }
}
