//! Vendored stub of the `rand` crate covering the surface this
//! workspace uses, with algorithms ported from rand 0.8.5 /
//! rand_chacha 0.3 so that seeded generators reproduce the same
//! streams:
//!
//! - [`rngs::StdRng`]: ChaCha with 12 rounds, 64-word block buffer;
//! - [`SeedableRng::seed_from_u64`]: SplitMix64 key expansion;
//! - [`Rng::gen_range`]: widening-multiply rejection sampling
//!   (integers) and the 52-bit mantissa trick (floats);
//! - [`seq::SliceRandom::shuffle`]: Fisher–Yates over `u32` indices.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;

/// Low-level generator interface (rand_core's `RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable construction (rand_core's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly as
    /// rand_core 0.6 does (low 32 bits of each output per 4-byte chunk).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len().min(4);
            chunk[..len].copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Sample a value via the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
