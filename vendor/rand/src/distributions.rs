//! The standard distribution and uniform range sampling, ported from
//! rand 0.8.5 so seeded draws match: integers use widening-multiply
//! rejection sampling, `f64` uses the 53-bit multiply (standard) and
//! 52-bit mantissa (ranges) constructions.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over all values for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // 64-bit platforms (the only ones this workspace targets).
        rng.next_u64() as usize
    }
}

impl Distribution<i8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i8 {
        rng.next_u32() as i8
    }
}

impl Distribution<i16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i16 {
        rng.next_u32() as i16
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand compares the sign bit, not the low bit.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = rng.next_u64() >> 11; // 53 significant bits
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8; // 24 significant bits
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_range_inclusive(low, high, rng)
    }
}

/// rand 0.8's `uniform_int_impl!`: `$u_large` sampling with
/// widening-multiply rejection. Small types (u8/u16) use the exact
/// modulus zone over `u32`; u32/u64/usize use the leading-zeros
/// approximation.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $exact_zone:expr) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                Self::sample_range_inclusive(low, high - 1, rng)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full type range.
                    return sample_large::<$u_large, R>(rng) as $ty;
                }
                let zone = if $exact_zone {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = sample_large::<$u_large, R>(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> (<$u_large>::BITS)) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

/// Draw one `$u_large` value.
trait SampleLarge {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleLarge for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleLarge for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleLarge for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

fn sample_large<T: SampleLarge, R: RngCore + ?Sized>(rng: &mut R) -> T {
    T::draw(rng)
}

uniform_int_impl! { u8, u8, u32, u64, true }
uniform_int_impl! { u16, u16, u32, u64, true }
uniform_int_impl! { u32, u32, u32, u64, false }
uniform_int_impl! { u64, u64, u64, u128, false }
uniform_int_impl! { usize, usize, usize, u128, false }
uniform_int_impl! { i8, u8, u32, u64, true }
uniform_int_impl! { i16, u16, u32, u64, true }
uniform_int_impl! { i32, u32, u32, u64, false }
uniform_int_impl! { i64, u64, u64, u128, false }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bias:expr, $frac_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low.is_finite() && high.is_finite());
                let scale = high - low;
                // Value in [1, 2): exponent 0, random mantissa.
                let fraction = (sample_large::<$uty, R>(rng) >> $bits_to_discard) as $uty;
                let value1_2 = <$ty>::from_bits((($exp_bias as $uty) << $frac_bits) | fraction);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Matches rand's behavior closely enough for the closed
                // ranges this workspace never actually uses with floats.
                Self::sample_range(low, high, rng)
            }
        }
    };
}

uniform_float_impl! { f64, u64, 12, 1023u64, 52 }
uniform_float_impl! { f32, u32, 9, 127u32, 23 }

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn small_int_ranges_unbiased_support() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0u8..6) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn full_range_does_not_loop_forever() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u32 = rng.gen_range(0u32..=u32::MAX);
        let _: u8 = rng.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn float_range_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let v = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&v), "{v}");
        }
    }
}
