//! Named generators. [`StdRng`] matches rand 0.8 (ChaCha, 12 rounds).

use crate::chacha::ChaChaCore;
use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha12, as in rand 0.8.
#[derive(Clone)]
pub struct StdRng {
    core: ChaChaCore<12>,
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StdRng { .. }")
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.core.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.core.fill_bytes(dest);
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaChaCore::from_seed(seed),
        }
    }
}
