//! Slice sampling helpers (rand 0.8's `SliceRandom` surface that this
//! workspace uses).

use crate::distributions::SampleUniform;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle, identical to rand 0.8 (indices drawn as
    /// `u32` for slices that fit).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) + 1 {
        u32::sample_range(0, ubound as u32, rng) as usize
    } else {
        usize::sample_range(0, ubound, rng)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}
