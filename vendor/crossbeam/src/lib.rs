//! Vendored stub of the `crossbeam` surface this workspace uses:
//!
//! - [`scope`] / [`thread::scope`]: scoped threads, implemented over
//!   `std::thread::scope` (std has had scoped threads since 1.63);
//! - [`channel::bounded`] / [`channel::unbounded`]: MPMC channels built
//!   on `Mutex<VecDeque>` + condvars.
//!
//! Semantics match crossbeam where the workspace relies on them: scope
//! returns `Err` when a spawned thread panicked, sends fail once all
//! receivers are gone, and receives fail once the queue is empty and
//! all senders are gone.

use std::any::Any;

pub mod thread {
    use super::Any;

    /// Scope handle passed to [`scope`] closures; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned.
    /// All threads are joined before this returns. Returns `Err` with
    /// the panic payload if the closure or any unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and no sender remains.
        Disconnected,
    }

    /// A bounded MPMC channel. A capacity of 0 is treated as 1 (this
    /// stub has no rendezvous mode; the workspace never uses one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is queued or every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Wake senders blocked on a full queue so they can fail.
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u32, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_reports_spawned_panic() {
        let result = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        });
        // The closure itself returned the join result without panicking.
        assert!(result.unwrap().is_err());
    }

    #[test]
    fn bounded_channel_fan_out_fan_in() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let got = super::scope(|s| {
            let rx2 = rx.clone();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx2.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += u64::from(v);
                        }
                        sum
                    })
                })
                .collect();
            drop(rx2);
            drop(rx);
            for v in 0..100u32 {
                tx.send(v).unwrap();
            }
            drop(tx);
            consumers
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<u64>()
        })
        .unwrap();
        assert_eq!(got, (0..100u64).sum::<u64>());
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(4);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert!(rx.recv().is_err());
    }
}
